//! Query workload generation (§VI-B "Queries"): each query randomly
//! picks a head entity + relationship and asks for top-k tails, or a
//! tail entity + relationship and asks for top-k heads — systematically
//! exploring the space of queried embedding vectors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vkg::prelude::*;

/// One generated query.
#[derive(Debug, Clone, Copy)]
pub struct Query {
    /// The given entity.
    pub entity: EntityId,
    /// The relationship.
    pub relation: RelationId,
    /// Which endpoint is asked for.
    pub direction: Direction,
}

/// Generates `n` random queries over existing triples (guaranteeing the
/// entity actually participates in the relationship, as real workloads
/// do).
pub fn generate(graph: &KnowledgeGraph, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let triples = graph.triples();
    assert!(
        !triples.is_empty(),
        "cannot generate queries over an empty graph"
    );
    (0..n)
        .map(|_| {
            let t = triples[rng.gen_range(0..triples.len())];
            if rng.gen_bool(0.5) {
                Query {
                    entity: t.head,
                    relation: t.relation,
                    direction: Direction::Tails,
                }
            } else {
                Query {
                    entity: t.tail,
                    relation: t.relation,
                    direction: Direction::Heads,
                }
            }
        })
        .collect()
}

/// Generates `n` queries whose *triple* choice is Zipf-skewed with
/// exponent `s`: triple at popularity rank `r` (0-based) is drawn with
/// weight `1/(r+1)^s`, so a hot head of the workload repeats — the
/// regime where a result cache earns its keep. `s = 0` degenerates to
/// the uniform [`generate`] distribution (same weights, different rng
/// stream). Direction still flips per query, like [`generate`].
pub fn generate_zipf(graph: &KnowledgeGraph, n: usize, seed: u64, s: f64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let triples = graph.triples();
    assert!(
        !triples.is_empty(),
        "cannot generate queries over an empty graph"
    );
    // Cumulative Zipf weights over ranks; rank order is the (stable)
    // triple order, which is as arbitrary as any popularity assignment.
    let mut cdf = Vec::with_capacity(triples.len());
    let mut total = 0.0;
    for r in 0..triples.len() {
        total += 1.0 / ((r + 1) as f64).powf(s);
        cdf.push(total);
    }
    (0..n)
        .map(|_| {
            let u = rng.gen_range(0.0..total);
            let idx = cdf.partition_point(|&c| c <= u).min(triples.len() - 1);
            let t = triples[idx];
            if rng.gen_bool(0.5) {
                Query {
                    entity: t.head,
                    relation: t.relation,
                    direction: Direction::Tails,
                }
            } else {
                Query {
                    entity: t.tail,
                    relation: t.relation,
                    direction: Direction::Heads,
                }
            }
        })
        .collect()
}

/// Runs one query against any engine over the shared snapshot.
pub fn run(engine: &mut dyn QueryEngine, snap: &VkgSnapshot, q: &Query, k: usize) -> TopKResult {
    match engine.top_k(snap, q.entity, q.relation, q.direction, k) {
        Ok(r) => r,
        // lint: allow(no-unwrap, harness invariant: queries come from generate() over this graph)
        Err(e) => panic!("generated queries use valid ids: {e}"),
    }
}

/// precision@K of `answer` against the engine's own ground-truth oracle
/// ([`QueryEngine::reference_top_k`]): the exact E′-semantics S₁ scan for
/// distance-ranked engines, the exact-MIPS scan for H2-ALSH.
pub fn precision_vs_reference(
    engine: &dyn QueryEngine,
    snap: &VkgSnapshot,
    q: &Query,
    k: usize,
    answer: &TopKResult,
) -> f64 {
    let truth = match engine.reference_top_k(snap, q.entity, q.relation, q.direction, k) {
        Ok(t) => t,
        // lint: allow(no-unwrap, harness invariant: queries come from generate() over this graph)
        Err(e) => panic!("generated queries use valid ids: {e}"),
    };
    if truth.is_empty() {
        return 1.0;
    }
    let truth_ids: std::collections::HashSet<u32> = truth.iter().copied().collect();
    let hits = answer
        .predictions
        .iter()
        .filter(|p| truth_ids.contains(&p.id))
        .count();
    hits as f64 / truth_ids.len().min(k) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vkg_kg::datasets::{movie_like, MovieConfig};

    use vkg::kg as vkg_kg;

    #[test]
    fn generated_queries_are_valid() {
        let ds = movie_like(&MovieConfig::tiny());
        let qs = generate(&ds.graph, 50, 1);
        assert_eq!(qs.len(), 50);
        for q in &qs {
            assert!(q.entity.index() < ds.graph.num_entities());
            assert!(q.relation.index() < ds.graph.num_relations());
        }
        // Both directions occur.
        assert!(qs.iter().any(|q| q.direction == Direction::Tails));
        assert!(qs.iter().any(|q| q.direction == Direction::Heads));
    }

    #[test]
    fn zipf_skews_toward_a_hot_head() {
        let ds = movie_like(&MovieConfig::tiny());
        let qs = generate_zipf(&ds.graph, 400, 3, 1.2);
        assert_eq!(qs.len(), 400);
        for q in &qs {
            assert!(q.entity.index() < ds.graph.num_entities());
            assert!(q.relation.index() < ds.graph.num_relations());
        }
        // The head of the rank order dominates: the single most frequent
        // (entity, relation, direction) triple appears far more often
        // than the uniform expectation.
        let mut counts = std::collections::HashMap::new();
        for q in &qs {
            *counts
                .entry((q.entity.0, q.relation.0, q.direction == Direction::Tails))
                .or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().expect("nonempty");
        let uniform = 400 / ds.graph.triples().len().max(1) as u32;
        assert!(
            max > 2 * uniform.max(1),
            "zipf head repeats (max {max}, uniform {uniform})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = movie_like(&MovieConfig::tiny());
        let a = generate(&ds.graph, 10, 7);
        let b = generate(&ds.graph, 10, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.entity, y.entity);
            assert_eq!(x.relation, y.relation);
        }
    }
}
