//! The workspace-level error type threaded through the query engine.
//!
//! Query processing used to panic (or carry a facade-private
//! `QueryError`) on bad input; every fallible engine entry point now
//! returns a [`VkgError`] instead. Panics remain only for *invariant
//! violations* — broken internal state that no caller input can produce —
//! and their messages name the invariant.

use std::fmt;

use vkg_kg::KgError;

/// Convenience alias for results produced by the engine layer.
pub type VkgResult<T> = Result<T, VkgError>;

/// Errors raised when assembling or querying a virtual knowledge graph.
#[derive(Debug, Clone, PartialEq)]
pub enum VkgError {
    /// The query entity id is out of range.
    UnknownEntity(u32),
    /// The relation id is out of range.
    UnknownRelation(u32),
    /// The aggregate references an attribute that does not exist.
    UnknownAttribute(String),
    /// An attribute aggregate was requested without naming an attribute.
    MissingAttribute,
    /// A caller-supplied parameter is outside its valid range (e.g.
    /// `k = 0`, `ε ≤ 0`, a probability threshold outside `(0, 1]`).
    InvalidParameter(String),
    /// Two components that must agree on a size do not (e.g. the
    /// embedding store and graph disagree on the entity count).
    Mismatch {
        /// What disagreed (human-readable, e.g. `"entity count"`).
        what: &'static str,
        /// The size the graph/configuration expected.
        expected: usize,
        /// The size actually found.
        found: usize,
    },
    /// The engine does not implement the requested operation (e.g.
    /// aggregates on a baseline without element summaries).
    Unsupported {
        /// `QueryEngine::name()` of the refusing engine.
        engine: String,
        /// The operation that is not supported.
        operation: &'static str,
    },
    /// An underlying knowledge-graph operation failed (rendered message;
    /// the original [`KgError`] may wrap a non-clonable I/O error).
    Graph(String),
    /// The durability layer refused or failed the write: the WAL append
    /// or flush did not complete, so the write was **not** applied and
    /// **not** acked (rendered [`crate::wal::WalError`]).
    Durability(String),
}

impl fmt::Display for VkgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VkgError::UnknownEntity(id) => write!(f, "unknown entity id {id}"),
            VkgError::UnknownRelation(id) => write!(f, "unknown relation id {id}"),
            VkgError::UnknownAttribute(a) => write!(f, "unknown attribute {a:?}"),
            VkgError::MissingAttribute => {
                write!(f, "aggregate kind requires an attribute name")
            }
            VkgError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            VkgError::Mismatch {
                what,
                expected,
                found,
            } => {
                write!(f, "{what} mismatch: expected {expected}, found {found}")
            }
            VkgError::Unsupported { engine, operation } => {
                write!(f, "engine {engine:?} does not support {operation}")
            }
            VkgError::Graph(e) => write!(f, "knowledge graph error: {e}"),
            VkgError::Durability(e) => write!(f, "durability error: {e}"),
        }
    }
}

impl std::error::Error for VkgError {}

impl From<crate::wal::WalError> for VkgError {
    fn from(e: crate::wal::WalError) -> Self {
        VkgError::Durability(e.to_string())
    }
}

impl From<KgError> for VkgError {
    fn from(e: KgError) -> Self {
        match e {
            KgError::UnknownEntity(id) => VkgError::UnknownEntity(id),
            KgError::UnknownRelation(id) => VkgError::UnknownRelation(id),
            KgError::UnknownAttribute(a) => VkgError::UnknownAttribute(a),
            other => VkgError::Graph(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            VkgError::UnknownEntity(7).to_string(),
            "unknown entity id 7"
        );
        assert!(VkgError::UnknownAttribute("year".into())
            .to_string()
            .contains("year"));
        let m = VkgError::Mismatch {
            what: "entity count",
            expected: 10,
            found: 9,
        };
        assert!(m.to_string().contains("entity count"));
        let u = VkgError::Unsupported {
            engine: "ph-tree".into(),
            operation: "aggregate",
        };
        assert!(u.to_string().contains("aggregate"));
    }

    #[test]
    fn kg_errors_map_to_matching_variants() {
        assert_eq!(
            VkgError::from(KgError::UnknownEntity(3)),
            VkgError::UnknownEntity(3)
        );
        assert_eq!(
            VkgError::from(KgError::UnknownRelation(5)),
            VkgError::UnknownRelation(5)
        );
        assert!(matches!(
            VkgError::from(KgError::UnknownAttribute("x".into())),
            VkgError::UnknownAttribute(_)
        ));
    }
}
