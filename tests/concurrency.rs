//! Concurrency: the assembled engine is `Send`, read paths are shareable,
//! and a lock-guarded engine serves a multi-threaded query workload with
//! results identical to the serial run.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use vkg::prelude::*;

fn build() -> (Dataset, VirtualKnowledgeGraph) {
    let ds = movie_like(&MovieConfig::tiny());
    let vkg = vkg::build_from_dataset(
        &ds,
        TransEConfig {
            dim: 16,
            epochs: 6,
            ..TransEConfig::default()
        },
        VkgConfig::default(),
    );
    (ds, vkg)
}

#[test]
fn engine_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<VirtualKnowledgeGraph>();
    assert_send::<KnowledgeGraph>();
    assert_send::<EmbeddingStore>();
    assert_send::<CrackingIndex>();
}

#[test]
fn concurrent_readers_on_graph_and_embeddings() {
    let (_ds, vkg) = build();
    let shared = Arc::new(RwLock::new(vkg));
    let mut handles = Vec::new();
    for t in 0..4 {
        let shared = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            let guard = shared.read();
            let mut checksum = 0usize;
            for i in (t * 10)..(t * 10 + 10) {
                let e = EntityId(i as u32);
                if let Some(name) = guard.graph().entity_name(e) {
                    checksum += name.len();
                    checksum += guard.embeddings().entity(e).len();
                }
            }
            checksum
        }));
    }
    for h in handles {
        assert!(h.join().unwrap() > 0);
    }
}

#[test]
fn parallel_queries_match_serial_results() {
    let (ds, vkg) = build();
    let likes = ds.graph.relation_id("likes").unwrap();
    let users: Vec<EntityId> = (0..12)
        .map(|u| ds.graph.entity_id(&format!("user_{u}")).unwrap())
        .collect();

    // Serial reference on an identical fresh engine.
    let (_, serial) = {
        let d = movie_like(&MovieConfig::tiny());
        let v = vkg::build_from_dataset(
            &d,
            TransEConfig {
                dim: 16,
                epochs: 6,
                ..TransEConfig::default()
            },
            VkgConfig::default(),
        );
        (d, v)
    };
    let mut serial_answers = Vec::new();
    for &u in &users {
        let r = serial.top_k(u, likes, Direction::Tails, 5).unwrap();
        serial_answers.push(r.predictions.iter().map(|p| p.id).collect::<Vec<_>>());
    }

    // Parallel run: queries mutate the index (cracking), so a Mutex
    // serializes the engine while threads interleave arbitrarily.
    let shared = Arc::new(Mutex::new(vkg));
    let mut handles = Vec::new();
    for (qi, &u) in users.iter().enumerate() {
        let shared = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            let guard = shared.lock();
            let r = guard.top_k(u, likes, Direction::Tails, 5).unwrap();
            (qi, r.predictions.iter().map(|p| p.id).collect::<Vec<_>>())
        }));
    }
    let mut parallel_answers = vec![Vec::new(); users.len()];
    for h in handles {
        let (qi, ids) = h.join().unwrap();
        parallel_answers[qi] = ids;
    }

    // Cracking order differs between runs, but answers are order-
    // independent (the index is lossless; only its shape differs).
    for (qi, (s, p)) in serial_answers.iter().zip(&parallel_answers).enumerate() {
        assert_eq!(s, p, "query {qi} diverged under concurrency");
    }
    shared.lock().index().check_invariants();
}

/// Snapshot isolation: readers holding `Arc<VkgSnapshot>` clones make
/// progress while the index write lock is held for the whole duration —
/// the read path never touches the engine lock.
#[test]
fn snapshot_readers_progress_while_writer_holds_index_lock() {
    let (ds, vkg) = build();
    let likes = ds.graph.relation_id("likes").unwrap();
    let snap = vkg.snapshot();

    // The "writer": grab the engine write lock and sit on it, as a
    // long-running crack would.
    let writer_guard = vkg.index_mut();

    let (tx, rx) = std::sync::mpsc::channel();
    let n_readers = 4;
    let mut handles = Vec::new();
    for t in 0..n_readers {
        let snap = Arc::clone(&snap);
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            let mut checksum = 0usize;
            for u in 0..6 {
                let user = snap.graph().entity_id(&format!("user_{u}")).unwrap();
                let q = snap.query_point_s1(user, likes, Direction::Tails).unwrap();
                checksum += q.len();
                checksum += snap.known_neighbors(user, likes, Direction::Tails).len();
                checksum += snap.project(&q).len();
            }
            tx.send((t, checksum)).unwrap();
        }));
    }

    // Readers must finish while the write lock is still held; a deadlock
    // (reads secretly routed through the engine lock) trips the timeout.
    for _ in 0..n_readers {
        let (_, checksum) = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("snapshot readers must progress while the index lock is held");
        assert!(checksum > 0);
    }
    drop(writer_guard);
    for h in handles {
        h.join().unwrap();
    }

    // With the lock released, writers crack and readers keep reading
    // concurrently through the same facade.
    let shared = Arc::new(vkg);
    let mut handles = Vec::new();
    for t in 0..4 {
        let shared = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            let user = shared.graph().entity_id(&format!("user_{t}")).unwrap();
            let r = shared.top_k(user, likes, Direction::Tails, 3).unwrap();
            assert!(r.predictions.len() <= 3);
        }));
    }
    let snap2 = shared.snapshot();
    for t in 0..4 {
        let snap2 = Arc::clone(&snap2);
        handles.push(std::thread::spawn(move || {
            let user = snap2.graph().entity_id(&format!("user_{t}")).unwrap();
            assert!(
                !snap2
                    .known_neighbors(user, likes, Direction::Tails)
                    .is_empty()
                    || snap2.graph().num_entities() > 0
            );
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    shared.index().check_invariants();
}

#[test]
fn index_stats_are_coherent_after_concurrent_load() {
    let (ds, vkg) = build();
    let likes = ds.graph.relation_id("likes").unwrap();
    let shared = Arc::new(Mutex::new(vkg));
    let mut handles = Vec::new();
    for t in 0..8 {
        let shared = Arc::clone(&shared);
        let ds_users = ds.graph.entity_id(&format!("user_{t}")).unwrap();
        handles.push(std::thread::spawn(move || {
            let guard = shared.lock();
            let _ = guard.top_k(ds_users, likes, Direction::Tails, 3).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let guard = shared.lock();
    let s = guard.index_stats();
    assert!(s.s1_distance_evals > 0);
    assert!(guard.index_node_count() >= 1);
    guard.index().check_invariants();
}
