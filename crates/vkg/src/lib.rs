//! # vkg — virtual knowledge graphs with online cracking indices
//!
//! A from-scratch Rust implementation of *Online Indices for Predictive
//! Top-k Entity and Aggregate Queries on Knowledge Graphs* (Li, Ge, Chen;
//! ICDE 2020).
//!
//! A **virtual knowledge graph** extends a knowledge graph with predicted
//! edges and their probabilities, induced by a graph-embedding algorithm.
//! This crate answers two query families over it, efficiently and with
//! provable accuracy guarantees:
//!
//! * **Top-k entity queries** — "the top-5 restaurants Amy would rate
//!   high but hasn't been to yet";
//! * **Aggregate queries** — "the average age of everyone who would like
//!   Restaurant 2" (COUNT/SUM/AVG/MAX/MIN).
//!
//! The engine projects the embedding vectors into a low-dimensional space
//! with a Johnson–Lindenstrauss transform, and builds a **cracking
//! R-tree** over them *online*: the tree grows only where queries look,
//! so there is no offline index-building phase and the index stays a
//! small fraction of a fully bulk-loaded tree.
//!
//! ## Quickstart
//!
//! ```
//! use vkg::prelude::*;
//!
//! // A toy knowledge graph.
//! let mut graph = KnowledgeGraph::new();
//! for i in 0..30 {
//!     graph
//!         .add_fact(&format!("user_{}", i % 6), "likes", &format!("item_{i}"))
//!         .unwrap();
//! }
//!
//! // Train TransE embeddings (the algorithm 𝒜 inducing the virtual KG).
//! let (embeddings, _stats) = TransE::new(TransEConfig::fast()).train(&graph);
//!
//! // Assemble and query. Queries take `&self` — the index cracks behind
//! // an internal lock while reads share an immutable snapshot.
//! let vkg = VirtualKnowledgeGraph::assemble(
//!     graph,
//!     AttributeStore::new(),
//!     embeddings,
//!     VkgConfig::default(),
//! );
//! let amy = vkg.graph().entity_id("user_0").unwrap();
//! let likes = vkg.graph().relation_id("likes").unwrap();
//! let top = vkg.top_k(amy, likes, Direction::Tails, 3).unwrap();
//! assert!(top.predictions.len() <= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vkg_baselines as baselines;
pub use vkg_core as core;
pub use vkg_embed as embed;
pub use vkg_kg as kg;
pub use vkg_obs as obs;
pub use vkg_server as server;
pub use vkg_sync as sync;
pub use vkg_transform as transform;

use vkg_core::{VirtualKnowledgeGraph, VkgConfig};
use vkg_embed::{TransE, TransEConfig};
use vkg_kg::datasets::Dataset;

/// The common imports for applications.
pub mod prelude {
    pub use vkg_baselines::{
        H2Alsh, H2AlshConfig, H2AlshEngine, LinearScan, LinearScanEngine, PhTree, PhTreeEngine,
    };
    pub use vkg_core::query::aggregate::{AggregateKind, AggregateResult, AggregateSpec};
    pub use vkg_core::query::topk::{Prediction, TopKResult};
    pub use vkg_core::{
        shard_of_relation, Accuracy, CrackingIndex, Direction, EngineStats, IndexState, IndexStats,
        Neighbor, QueryEngine, ShardedEngine, SplitStrategy, VirtualKnowledgeGraph, VkgConfig,
        VkgError, VkgResult, VkgSnapshot,
    };
    pub use vkg_embed::{EmbeddingStore, TransA, TransAConfig, TransE, TransEConfig};
    pub use vkg_kg::datasets::{
        amazon_like, freebase_like, movie_like, AmazonConfig, Dataset, FreebaseConfig, MovieConfig,
    };
    pub use vkg_kg::{AttributeStore, EntityId, KnowledgeGraph, RelationId};
    pub use vkg_server::{Client, RetryPolicy, RetryStats, Server, ServerConfig, ServerHandle};
    pub use vkg_transform::JlTransform;
}

/// End-to-end pipeline: train TransE on a dataset's graph and assemble a
/// queryable virtual knowledge graph with an online cracking index.
///
/// This is the path every example and benchmark takes; applications with
/// precomputed embeddings should instead load them via
/// [`vkg_embed::io`] and call [`VirtualKnowledgeGraph::assemble`]
/// directly.
pub fn build_from_dataset(
    dataset: &Dataset,
    embed_cfg: TransEConfig,
    vkg_cfg: VkgConfig,
) -> VirtualKnowledgeGraph {
    let (embeddings, _) = TransE::new(embed_cfg).train(&dataset.graph);
    VirtualKnowledgeGraph::assemble(
        dataset.graph.clone(),
        dataset.attributes.clone(),
        embeddings,
        vkg_cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn build_from_dataset_end_to_end() {
        let ds = movie_like(&MovieConfig::tiny());
        let vkg = build_from_dataset(
            &ds,
            TransEConfig {
                dim: 12,
                epochs: 5,
                ..TransEConfig::default()
            },
            VkgConfig::default(),
        );
        let user = vkg.graph().entity_id("user_0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let r = vkg.top_k(user, likes, Direction::Tails, 5).unwrap();
        assert!(!r.predictions.is_empty());
        vkg.index().check_invariants();
    }
}
