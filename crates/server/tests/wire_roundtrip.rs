//! Property tests: every protocol message round-trips bit-exactly
//! through encode → decode, and the decoder fails closed (typed error,
//! never a panic) on truncated, trailing, or arbitrary hostile bytes.

use proptest::prelude::*;
use vkg_core::query::aggregate::AggregateKind;
use vkg_core::{Accuracy, Direction};
use vkg_obs::{HistSnapshot, MetricsSnapshot, Span, SpanOutcome};
use vkg_server::protocol::{
    AccuracyWire, AggregateWire, ErrorCode, MetricsWire, PredictionWire, Request, RequestOp,
    Response, ServerCounters, ServerError, ShardStatsWire, StatsWire, TopKWire, WireFilter,
};

fn direction(tag: u8) -> Direction {
    if tag == 0 {
        Direction::Tails
    } else {
        Direction::Heads
    }
}

fn kind(tag: u8) -> AggregateKind {
    match tag % 5 {
        0 => AggregateKind::Count,
        1 => AggregateKind::Sum,
        2 => AggregateKind::Avg,
        3 => AggregateKind::Max,
        _ => AggregateKind::Min,
    }
}

fn filter(tag: u8, text: String, lo: u32, hi: u32) -> WireFilter {
    if tag == 0 {
        WireFilter::NamePrefix(text)
    } else {
        WireFilter::IdRange { lo, hi }
    }
}

fn assert_request_roundtrip(req: Request) {
    let payload = req.encode();
    prop_assert_eq!(Request::decode(&payload).unwrap(), req.clone());
    assert_prefixes_fail_closed(&payload);
}

fn assert_response_roundtrip(resp: Response) {
    let payload = resp.encode();
    prop_assert_eq!(Response::decode(&payload).unwrap(), resp.clone());
    assert_prefixes_fail_closed(&payload);
}

/// Every strict prefix of a valid payload must decode to a typed error
/// (the message grammar has no self-delimiting valid prefixes shorter
/// than the whole payload — requests and responses alike).
fn assert_prefixes_fail_closed(payload: &[u8]) {
    for cut in 0..payload.len() {
        assert!(Request::decode(&payload[..cut]).is_err() || cut == payload.len());
        assert!(Response::decode(&payload[..cut]).is_err() || cut == payload.len());
    }
}

proptest! {
    #[test]
    fn top_k_request_roundtrip(
        (entity, relation, k, deadline_ms, dir) in
            (0u32..=u32::MAX, 0u32..=u32::MAX, 0u32..=u32::MAX, 0u32..=u32::MAX, 0u8..2),
    ) {
        assert_request_roundtrip(Request {
            deadline_ms,
            op: RequestOp::TopK { entity, relation, direction: direction(dir), k },
        });
    }

    #[test]
    fn top_k_filtered_request_roundtrip(
        (entity, relation, k, dir) in (0u32..1000, 0u32..50, 0u32..100, 0u8..2),
        (ftag, prefix, lo, hi) in (0u8..2, "[a-z_]{0,24}", 0u32..=u32::MAX, 0u32..=u32::MAX),
    ) {
        assert_request_roundtrip(Request {
            deadline_ms: 0,
            op: RequestOp::TopKFiltered {
                entity,
                relation,
                direction: direction(dir),
                k,
                filter: filter(ftag, prefix, lo, hi),
            },
        });
    }

    #[test]
    fn aggregate_request_roundtrip(
        (entity, relation, dir, ktag) in (0u32..1000, 0u32..50, 0u8..2, 0u8..5),
        (has_attr, attr, p_tau, has_a, a) in
            (0u8..2, "[a-z]{1,16}", 0.0f64..1.0, 0u8..2, 0u32..=u32::MAX),
    ) {
        assert_request_roundtrip(Request {
            deadline_ms: 0,
            op: RequestOp::Aggregate {
                entity,
                relation,
                direction: direction(dir),
                kind: kind(ktag),
                attribute: (has_attr == 1).then_some(attr),
                p_tau,
                sample_size: (has_a == 1).then_some(a),
            },
        });
    }

    #[test]
    fn add_fact_request_roundtrip(
        (h, r, t, refine_steps, learning_rate) in
            (0u32..=u32::MAX, 0u32..=u32::MAX, 0u32..=u32::MAX, 0u32..1000, -1.0f64..1.0),
        token in 0u64..=u64::MAX,
    ) {
        assert_request_roundtrip(Request {
            deadline_ms: 0,
            op: RequestOp::AddFactDynamic { h, r, t, refine_steps, learning_rate, token },
        });
    }

    #[test]
    fn control_request_roundtrip(deadline_ms in 0u32..=u32::MAX, last_spans in 0u32..=u32::MAX) {
        assert_request_roundtrip(Request { deadline_ms, op: RequestOp::Stats });
        assert_request_roundtrip(Request { deadline_ms, op: RequestOp::Shutdown });
        assert_request_roundtrip(Request { deadline_ms, op: RequestOp::Metrics { last_spans } });
    }

    #[test]
    fn top_k_response_roundtrip(
        (epoch, preds, success_probability) in (
            0u64..=u64::MAX,
            prop::collection::vec((0u32..=u32::MAX, 0.0f64..1e9, 0.0f64..1.0), 0..12),
            0.0f64..1.0,
        ),
        (expected_misses, s1_evals, candidates_examined) in
            (0.0f64..100.0, 0u64..=u64::MAX, 0u64..=u64::MAX),
    ) {
        assert_response_roundtrip(Response::TopK(TopKWire {
            epoch,
            predictions: preds
                .into_iter()
                .map(|(id, distance, probability)| PredictionWire { id, distance, probability })
                .collect(),
            success_probability,
            expected_misses,
            s1_evals,
            candidates_examined,
        }));
    }

    #[test]
    fn aggregate_response_roundtrip(
        (epoch, estimate, accessed, ball_size) in
            (0u64..=u64::MAX, -1e12f64..1e12, 0u64..=u64::MAX, 0u64..=u64::MAX),
        (mu, increment_mass) in (-1e12f64..1e12, 0.0f64..1e12),
    ) {
        assert_response_roundtrip(Response::Aggregate(AggregateWire {
            epoch, estimate, accessed, ball_size, mu, increment_mass,
        }));
    }

    #[test]
    fn fact_added_response_roundtrip(
        (added, epoch, token) in (0u8..2, 0u64..=u64::MAX, 0u64..=u64::MAX),
    ) {
        assert_response_roundtrip(Response::FactAdded { added: added == 1, epoch, token });
    }

    #[test]
    fn stats_response_roundtrip(
        (epoch, nodes, bytes, splits_performed, nodes_created) in
            (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX),
        (elements_accessed, points_examined, s1_distance_evals) in
            (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX),
        (acc_tag, acc_x) in (0u8..3, 0.0f64..1.0),
        (admitted, answered, shed, deadline_expired, drained) in
            (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX),
        shards in prop::collection::vec(
            (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX), 0..8),
    ) {
        let accuracy = AccuracyWire(match acc_tag {
            0 => Accuracy::Exact,
            1 => Accuracy::Approximate { min_overlap: acc_x },
            _ => Accuracy::SelfOracle { min_recall: acc_x },
        });
        let shards = shards
            .into_iter()
            .map(|(epoch, admitted, answered)| ShardStatsWire { epoch, admitted, answered })
            .collect();
        assert_response_roundtrip(Response::Stats(StatsWire {
            epoch,
            nodes,
            bytes,
            splits_performed,
            nodes_created,
            elements_accessed,
            points_examined,
            s1_distance_evals,
            accuracy,
            server: ServerCounters { admitted, answered, shed, deadline_expired, drained },
            shards,
        }));
    }

    #[test]
    fn error_response_roundtrip((tag, message) in (0u8..6, "[ -~]{0,64}")) {
        let code = [
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Draining,
            ErrorCode::MalformedRequest,
            ErrorCode::Query,
            ErrorCode::Internal,
        ][tag as usize];
        assert_response_roundtrip(Response::Error(ServerError { code, message }));
    }

    #[test]
    fn shutting_down_response_roundtrip(_x in 0u8..1) {
        assert_response_roundtrip(Response::ShuttingDown);
    }

    #[test]
    fn metrics_response_roundtrip(
        epoch in 0u64..=u64::MAX,
        counters in prop::collection::vec(("[a-z._]{0,24}", 0u64..=u64::MAX), 0..6),
        gauges in prop::collection::vec(("[a-z._]{0,24}", 0u64..=u64::MAX), 0..6),
        hists in prop::collection::vec(
            (
                "[a-z._]{0,24}",
                0u64..=u64::MAX,
                0u64..=u64::MAX,
                prop::collection::vec((0u32..256, 0u64..=u64::MAX), 0..8),
            ),
            0..4,
        ),
        spans in prop::collection::vec(
            (
                0u64..=u64::MAX,
                0u8..=255,
                0u32..=u32::MAX,
                0u8..3,
                (
                    (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX),
                    (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX),
                ),
            ),
            0..8,
        ),
        (spans_recorded, spans_dropped) in (0u64..=u64::MAX, 0u64..=u64::MAX),
    ) {
        let snapshot = MetricsSnapshot {
            counters,
            gauges,
            hists: hists
                .into_iter()
                .map(|(name, total, max_us, buckets)| {
                    (name, HistSnapshot { total, max_us, buckets })
                })
                .collect(),
            spans: spans
                .into_iter()
                .map(|(id, op, shard, outcome, ns)| Span {
                    id,
                    op,
                    shard,
                    outcome: SpanOutcome::from_u8(outcome),
                    queue_ns: ns.0 .0,
                    lock_ns: ns.0 .1,
                    exec_ns: ns.0 .2,
                    encode_ns: ns.1 .0,
                    batch_ns: ns.1 .1,
                    refine_steps: ns.1 .2,
                })
                .collect(),
            spans_recorded,
            spans_dropped,
        };
        assert_response_roundtrip(Response::Metrics(MetricsWire { epoch, snapshot }));
    }

    /// Hostile bytes never panic the decoders — they return typed
    /// errors. (Accidentally-valid frames are allowed, just not UB or
    /// panics.)
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..128)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }
}
