//! One function per table/figure of the paper's evaluation (§VI), plus
//! the DESIGN.md ablations. Each emits an aligned table to stdout and a
//! CSV under the results directory.
//!
//! Every method — no-index scan, PH-tree, H2-ALSH, bulk-loaded R-tree
//! and the cracking index — goes through the single `run_method`
//! driver as a `Box<dyn QueryEngine>` over a shared [`VkgSnapshot`];
//! the per-method loops differ only in how the engine is built and
//! which query stream it sees.

use std::path::Path;
use std::time::Duration;

use vkg::obs::Stopwatch;

use vkg::prelude::*;

use crate::report::{fmt_duration, Table};
use crate::setup::{self, Prepared, Scale};
use crate::workload::{self, Query};

/// Queries measured individually over the initial sequence (the paper
/// reports the 1st, 6th, 11th and 16th).
const PROBE_QUERIES: [usize; 4] = [1, 6, 11, 16];

fn steady_queries(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 100,
        Scale::Standard => 1_000,
        Scale::Large => 10_000,
    }
}

fn dim(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 24,
        _ => 48,
    }
}

/// Runs the experiment with the given id. Returns false if the id is
/// unknown.
pub fn run(exp: &str, scale: Scale, out: &Path) -> bool {
    match exp {
        "table1" => table1(scale, out),
        "fig3" | "fig4" => fig3_fig4(scale, out),
        "fig5" | "fig6" => fig5_fig6(scale, out),
        "fig7" | "fig8" => fig7_fig8(scale, out),
        "fig9" => fig9(scale, out),
        "fig10" => fig10_fig11(scale, out, "movie", "fig10"),
        "fig11" => fig10_fig11(scale, out, "amazon", "fig11"),
        "fig12" => aggregate_sweep(scale, out, "fig12", "freebase", AggregateKind::Count, None),
        "fig13" => aggregate_sweep(
            scale,
            out,
            "fig13",
            "movie",
            AggregateKind::Avg,
            Some("year"),
        ),
        "fig14" => aggregate_sweep(
            scale,
            out,
            "fig14",
            "amazon",
            AggregateKind::Avg,
            Some("quality"),
        ),
        "fig15" => aggregate_sweep(
            scale,
            out,
            "fig15",
            "freebase",
            AggregateKind::Max,
            Some("popularity"),
        ),
        "fig16" => aggregate_sweep(
            scale,
            out,
            "fig16",
            "movie",
            AggregateKind::Min,
            Some("year"),
        ),
        "abl_alpha" => ablation_alpha(scale, out),
        "abl_eps" => ablation_epsilon(scale, out),
        "abl_beta" => ablation_beta(scale, out),
        "abl_cost" => ablation_cost(scale, out),
        "abl_shards" => ablation_shards(scale, out),
        _ => return false,
    }
    true
}

/// All experiment ids, in paper order.
pub const ALL: &[&str] = &[
    "table1",
    "fig3",
    "fig5",
    "fig7",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "abl_alpha",
    "abl_eps",
    "abl_beta",
    "abl_cost",
    "abl_shards",
];

// ---------------------------------------------------------------------
// Table I: dataset statistics.
// ---------------------------------------------------------------------

fn table1(scale: Scale, out: &Path) {
    let mut t = Table::new(
        "Table I: statistics of the (synthetic stand-in) datasets",
        &["dataset", "entities", "relationship types", "edges"],
    );
    let d = dim(scale);
    for p in [
        setup::freebase(scale, d),
        setup::movie(scale, d),
        setup::amazon(scale, d),
    ] {
        let s = p.dataset.graph.stats();
        t.row(vec![
            p.dataset.name.clone(),
            s.entities.to_string(),
            s.relation_types.to_string(),
            s.edges.to_string(),
        ]);
    }
    t.emit(out, "table1");
}

// ---------------------------------------------------------------------
// The generic per-method driver.
// ---------------------------------------------------------------------

struct MethodRun {
    name: String,
    build: Duration,
    probes: Vec<Duration>,
    steady_avg: Duration,
    precision: f64,
}

/// Runs `queries` against the engine produced by `build`, measuring the
/// build (reported only when `timed_build` — online methods pay no
/// offline phase), the probe queries, the steady-state average and
/// precision@K against the engine's own reference oracle.
fn run_method(
    name: &str,
    snap: &VkgSnapshot,
    queries: &[Query],
    k: usize,
    scale: Scale,
    timed_build: bool,
    build: impl FnOnce() -> Box<dyn QueryEngine>,
) -> MethodRun {
    let t0 = Stopwatch::start();
    let mut engine = build();
    let build = if timed_build {
        t0.elapsed()
    } else {
        Duration::ZERO
    };

    let steady_n = steady_queries(scale);
    let mut probes = Vec::new();
    let mut steady = Duration::ZERO;
    let mut precision_sum = 0.0;
    let mut precision_n = 0usize;
    for (i, q) in queries.iter().enumerate() {
        let t = Stopwatch::start();
        let answer = workload::run(engine.as_mut(), snap, q, k);
        let dt = t.elapsed();
        if PROBE_QUERIES.contains(&(i + 1)) {
            probes.push(dt);
        }
        if i >= 20 && i < 20 + steady_n {
            steady += dt;
        }
        if i % 7 == 0 && precision_n < 30 {
            precision_sum += workload::precision_vs_reference(engine.as_ref(), snap, q, k, &answer);
            precision_n += 1;
        }
    }
    MethodRun {
        name: name.to_owned(),
        build,
        probes,
        steady_avg: steady / steady_n.max(1) as u32,
        precision: precision_sum / precision_n.max(1) as f64,
    }
}

fn time_table(title: &str, runs: &[MethodRun]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "method",
            "index build",
            "q1",
            "q6",
            "q11",
            "q16",
            "steady avg",
        ],
    );
    for r in runs {
        t.row(vec![
            r.name.clone(),
            fmt_duration(r.build),
            fmt_duration(r.probes[0]),
            fmt_duration(r.probes[1]),
            fmt_duration(r.probes[2]),
            fmt_duration(r.probes[3]),
            fmt_duration(r.steady_avg),
        ]);
    }
    t
}

fn precision_table(title: &str, column: &str, runs: &[MethodRun]) -> Table {
    let mut t = Table::new(title, &["method", column]);
    for r in runs {
        t.row(vec![r.name.clone(), format!("{:.4}", r.precision)]);
    }
    t
}

// ---------------------------------------------------------------------
// H2-ALSH's native single-relation workload: user → top-k items by
// inner product over "likes", with recall measured against its own
// exact-MIPS no-index case (as the paper does: "the H2-ALSH numbers are
// based on … comparing to its no-index case").
// ---------------------------------------------------------------------

fn run_h2alsh(p: &Prepared, snap: &VkgSnapshot, k: usize, scale: Scale, label: &str) -> MethodRun {
    let graph = &p.dataset.graph;
    // Item side: everything that is the tail of a "likes" edge type —
    // movies or products, recognizable by name prefix.
    let items: Vec<u32> = (0..graph.num_entities() as u32)
        .filter(|&e| {
            graph
                .entity_name(EntityId(e))
                .is_some_and(|n| n.starts_with("movie_") || n.starts_with("product_"))
        })
        .collect();
    let users: Vec<EntityId> = (0..graph.num_entities() as u32)
        .map(EntityId)
        .filter(|&e| graph.entity_name(e).is_some_and(|n| n.starts_with("user_")))
        .collect();
    let likes = graph
        .relation_id("likes")
        // lint: allow(no-unwrap, harness precondition: callers pass movie/amazon datasets, which define "likes")
        .expect("movie/amazon datasets define a likes relation");
    let queries: Vec<Query> = (0..steady_queries(scale) + 20)
        .map(|i| Query {
            entity: users[i % users.len()],
            relation: likes,
            direction: Direction::Tails,
        })
        .collect();
    run_method(
        label,
        snap,
        &queries,
        k,
        scale,
        true,
        || match H2AlshEngine::build(snap, items, H2AlshConfig::default()) {
            Ok(e) => Box::new(e),
            // lint: allow(no-unwrap, harness invariant: the item filter above yields a non-empty in-range corpus)
            Err(e) => panic!("item corpus is non-empty and in range: {e}"),
        },
    )
}

// ---------------------------------------------------------------------
// Figures 3–4: Freebase — method vs elapsed time, and precision@K.
// ---------------------------------------------------------------------

fn fig3_fig4(scale: Scale, out: &Path) {
    let p = setup::freebase(scale, dim(scale));
    let snap = p.snapshot(setup::bench_config());
    let queries = workload::generate(&p.dataset.graph, steady_queries(scale) + 20, 0xF163);
    let k = 10;

    let mut runs: Vec<MethodRun> = vec![
        run_method("no index", &snap, &queries, k, scale, false, || {
            Box::new(LinearScanEngine::new())
        }),
        run_method("PH-tree", &snap, &queries, k, scale, true, || {
            Box::new(PhTreeEngine::build(&snap))
        }),
        run_method("bulk-load R-tree", &snap, &queries, k, scale, true, || {
            Box::new(IndexState::bulk_loaded(&snap))
        }),
        run_method(
            "cracking (greedy)",
            &snap,
            &queries,
            k,
            scale,
            false,
            || Box::new(IndexState::cracking(&snap)),
        ),
    ];
    for choices in [2usize, 4] {
        let cfg = VkgConfig {
            split_strategy: SplitStrategy::TopK { choices },
            ..setup::bench_config()
        };
        let snap_c = p.snapshot(cfg);
        runs.push(run_method(
            &format!("{choices}-choice split"),
            &snap_c,
            &queries,
            k,
            scale,
            false,
            || Box::new(IndexState::cracking(&snap_c)),
        ));
    }

    time_table("Fig 3: method vs elapsed time (freebase-like)", &runs)
        .emit(out, "fig03_freebase_time");
    precision_table(
        "Fig 4: precision@K vs the no-index method (freebase-like)",
        "precision@10",
        &runs,
    )
    .emit(out, "fig04_freebase_accuracy");
}

// ---------------------------------------------------------------------
// Figures 5–6: Movie — α = 3 vs 6, plus H2-ALSH on the single "likes"
// relation.
// ---------------------------------------------------------------------

fn fig5_fig6(scale: Scale, out: &Path) {
    let p = setup::movie(scale, dim(scale));
    let queries = workload::generate(&p.dataset.graph, steady_queries(scale) + 20, 0xF165);
    let k = 10;

    let mut runs = Vec::new();
    for alpha in [3usize, 6] {
        let cfg = VkgConfig {
            alpha,
            ..setup::bench_config()
        };
        let snap = p.snapshot(cfg);
        runs.push(run_method(
            &format!("cracking α={alpha}"),
            &snap,
            &queries,
            k,
            scale,
            false,
            || Box::new(IndexState::cracking(&snap)),
        ));
        runs.push(run_method(
            &format!("bulk-load α={alpha}"),
            &snap,
            &queries,
            k,
            scale,
            true,
            || Box::new(IndexState::bulk_loaded(&snap)),
        ));
    }
    let snap = p.snapshot(setup::bench_config());
    runs.push(run_h2alsh(&p, &snap, k, scale, "H2-ALSH (likes only)"));

    time_table(
        "Fig 5: method vs elapsed time (movie-like), α = 3 vs 6, with H2-ALSH",
        &runs,
    )
    .emit(out, "fig05_movie_time");
    precision_table("Fig 6: precision@K (movie-like)", "precision@10", &runs)
        .emit(out, "fig06_movie_accuracy");
}

// ---------------------------------------------------------------------
// Figures 7–8: Amazon — H2-ALSH at k = 2 and 10, scaling vs Fig. 5.
// ---------------------------------------------------------------------

fn fig7_fig8(scale: Scale, out: &Path) {
    let p = setup::amazon(scale, dim(scale));
    let snap = p.snapshot(setup::bench_config());
    let queries = workload::generate(&p.dataset.graph, steady_queries(scale) + 20, 0xF167);

    let mut runs = Vec::new();
    for k in [2usize, 10] {
        runs.push(run_method(
            &format!("cracking: k={k}"),
            &snap,
            &queries,
            k,
            scale,
            false,
            || Box::new(IndexState::cracking(&snap)),
        ));
        runs.push(run_h2alsh(&p, &snap, k, scale, &format!("H2-ALSH: k={k}")));
    }
    runs.push(run_method(
        "bulk-load R-tree",
        &snap,
        &queries,
        10,
        scale,
        true,
        || Box::new(IndexState::bulk_loaded(&snap)),
    ));

    time_table(
        "Fig 7: method vs elapsed time (amazon-like), k = 2 vs 10",
        &runs,
    )
    .emit(out, "fig07_amazon_time");
    precision_table("Fig 8: precision@K (amazon-like)", "precision@K", &runs)
        .emit(out, "fig08_amazon_accuracy");
}

// ---------------------------------------------------------------------
// Figure 9: node counts, cracking vs bulk (freebase-like).
// Figures 10–11: index sizes (movie / amazon).
// ---------------------------------------------------------------------

fn fig9(scale: Scale, out: &Path) {
    let p = setup::freebase(scale, dim(scale));
    let snap = p.snapshot(setup::bench_config());
    let mut cracked = IndexState::cracking(&snap);
    let bulk = IndexState::bulk_loaded(&snap);
    let queries = workload::generate(&p.dataset.graph, 50, 0xF169);

    let mut t = Table::new(
        "Fig 9: #index nodes after N initial queries (freebase-like)",
        &["queries", "cracking nodes", "bulk-loaded nodes"],
    );
    t.row(vec![
        "0".into(),
        cracked.stats().nodes.to_string(),
        bulk.stats().nodes.to_string(),
    ]);
    for (i, q) in queries.iter().enumerate() {
        let _ = workload::run(&mut cracked, &snap, q, 10);
        let n = i + 1;
        if [1usize, 5, 10, 20, 50].contains(&n) {
            t.row(vec![
                n.to_string(),
                cracked.stats().nodes.to_string(),
                bulk.stats().nodes.to_string(),
            ]);
        }
    }
    t.emit(out, "fig09_freebase_nodes");
}

fn fig10_fig11(scale: Scale, out: &Path, which: &str, file_tag: &str) {
    let p = match which {
        "movie" => setup::movie(scale, dim(scale)),
        _ => setup::amazon(scale, dim(scale)),
    };
    let snap = p.snapshot(setup::bench_config());
    let mut cracked = IndexState::cracking(&snap);
    let bulk = IndexState::bulk_loaded(&snap);
    let queries = workload::generate(&p.dataset.graph, 50, 0xF1610);

    let mut t = Table::new(
        &format!(
            "Fig {}: index size in KiB after N initial queries ({}-like)",
            if which == "movie" { "10" } else { "11" },
            which
        ),
        &["queries", "cracking KiB", "bulk-loaded KiB"],
    );
    t.row(vec![
        "0".into(),
        (cracked.stats().bytes / 1024).to_string(),
        (bulk.stats().bytes / 1024).to_string(),
    ]);
    for (i, q) in queries.iter().enumerate() {
        let _ = workload::run(&mut cracked, &snap, q, 10);
        let n = i + 1;
        if [1usize, 5, 10, 20, 50].contains(&n) {
            t.row(vec![
                n.to_string(),
                (cracked.stats().bytes / 1024).to_string(),
                (bulk.stats().bytes / 1024).to_string(),
            ]);
        }
    }
    t.emit(out, &format!("{file_tag}_{which}_index_size"));
}

// ---------------------------------------------------------------------
// Figures 12–16: aggregate queries, sample-size (time) vs accuracy.
// ---------------------------------------------------------------------

fn aggregate_sweep(
    scale: Scale,
    out: &Path,
    fig: &str,
    which: &str,
    kind: AggregateKind,
    attribute: Option<&str>,
) {
    let p = match which {
        "freebase" => setup::freebase(scale, dim(scale)),
        "movie" => setup::movie(scale, dim(scale)),
        _ => setup::amazon(scale, dim(scale)),
    };
    let snap = p.snapshot(setup::bench_config());
    let mut engine = IndexState::cracking(&snap);
    // Aggregate queries want attribute-bearing targets; for movie/amazon
    // that means tails of "likes" from users — generate accordingly.
    let queries: Vec<Query> = if which == "freebase" {
        workload::generate(&p.dataset.graph, 200, 0xA612)
            .into_iter()
            .filter(|q| q.direction == Direction::Tails)
            .take(8)
            .collect()
    } else {
        // lint: allow(no-unwrap, harness precondition: the non-freebase branch only sees movie/amazon datasets)
        let likes = p.dataset.graph.relation_id("likes").unwrap();
        p.dataset
            .graph
            .triples()
            .iter()
            .filter(|t| t.relation == likes)
            .step_by(37)
            .take(8)
            .map(|t| Query {
                entity: t.head,
                relation: t.relation,
                direction: Direction::Tails,
            })
            .collect()
    };

    // Both the measured queries and the ground truth use the §VI
    // threshold 0.01; the only difference is how many points are
    // accessed exactly (unaccessed ones get element-approximated
    // probabilities), so the accuracy curve isolates sampling error.
    let base_spec = |a: Option<usize>| {
        let mut s = match attribute {
            None => AggregateSpec::count(0.01),
            Some(attr) => AggregateSpec::of(kind, attr, 0.01),
        };
        s.sample_size = a;
        s
    };
    let truth_spec = base_spec(None);

    let kind_name = match kind {
        AggregateKind::Count => "COUNT",
        AggregateKind::Sum => "SUM",
        AggregateKind::Avg => "AVG",
        AggregateKind::Max => "MAX",
        AggregateKind::Min => "MIN",
    };
    let mut t = Table::new(
        &format!(
            "Fig {}: {kind_name}{} queries ({which}-like) — sample size vs time and accuracy",
            fig.trim_start_matches("fig"),
            attribute.map(|a| format!("({a})")).unwrap_or_default(),
        ),
        &["sample a", "mean time", "mean accuracy"],
    );

    for a in [1usize, 2, 5, 10, 20, 50, 100, usize::MAX] {
        let mut time = Duration::ZERO;
        let mut acc_sum = 0.0;
        let mut n = 0usize;
        for q in &queries {
            let truth =
                match engine.aggregate(&snap, q.entity, q.relation, q.direction, &truth_spec) {
                    Ok(r) if r.ball_size > 0 && r.estimate.abs() > 1e-9 => r,
                    _ => continue,
                };
            let spec = base_spec(if a == usize::MAX { None } else { Some(a) });
            let t0 = Stopwatch::start();
            let est = match engine.aggregate(&snap, q.entity, q.relation, q.direction, &spec) {
                Ok(r) => r,
                Err(_) => continue,
            };
            time += t0.elapsed();
            let accuracy =
                (1.0 - (est.estimate - truth.estimate).abs() / truth.estimate.abs()).max(0.0);
            acc_sum += accuracy;
            n += 1;
        }
        if n == 0 {
            continue;
        }
        t.row(vec![
            if a == usize::MAX {
                "all".into()
            } else {
                a.to_string()
            },
            fmt_duration(time / n as u32),
            format!("{:.4}", acc_sum / n as f64),
        ]);
    }
    t.emit(out, &format!("{fig}_{which}_{}", kind_name.to_lowercase()));
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5): α, ε, β.
// ---------------------------------------------------------------------

fn ablation_alpha(scale: Scale, out: &Path) {
    let p = setup::movie(scale, dim(scale));
    let queries = workload::generate(&p.dataset.graph, 120, 0xAB01);
    let mut t = Table::new(
        "Ablation: S₂ dimensionality α — accuracy vs per-query time",
        &["alpha", "steady avg", "precision@10", "index KiB"],
    );
    for alpha in [2usize, 3, 4, 6, 8] {
        let cfg = VkgConfig {
            alpha,
            ..setup::bench_config()
        };
        let snap = p.snapshot(cfg);
        let mut engine = IndexState::cracking(&snap);
        let mut time = Duration::ZERO;
        let mut prec = 0.0;
        let mut n_prec = 0usize;
        for (i, q) in queries.iter().enumerate() {
            let t0 = Stopwatch::start();
            let answer = workload::run(&mut engine, &snap, q, 10);
            if i >= 20 {
                time += t0.elapsed();
            }
            if i % 5 == 0 {
                prec += workload::precision_vs_reference(&engine, &snap, q, 10, &answer);
                n_prec += 1;
            }
        }
        t.row(vec![
            alpha.to_string(),
            fmt_duration(time / (queries.len() - 20).max(1) as u32),
            format!("{:.4}", prec / n_prec.max(1) as f64),
            (engine.stats().bytes / 1024).to_string(),
        ]);
    }
    t.emit(out, "abl_alpha");
}

fn ablation_epsilon(scale: Scale, out: &Path) {
    let p = setup::movie(scale, dim(scale));
    let queries = workload::generate(&p.dataset.graph, 120, 0xAB02);
    let mut t = Table::new(
        "Ablation: ball inflation ε of Algorithm 3 — recall vs work",
        &["epsilon", "steady avg", "precision@10", "mean S1 evals"],
    );
    for eps in [0.5f64, 1.0, 2.0, 3.0, 5.0] {
        let cfg = VkgConfig {
            epsilon: eps,
            ..setup::bench_config()
        };
        let snap = p.snapshot(cfg);
        let mut engine = IndexState::cracking(&snap);
        let mut time = Duration::ZERO;
        let mut prec = 0.0;
        let mut n_prec = 0usize;
        let mut evals = 0u64;
        for (i, q) in queries.iter().enumerate() {
            let t0 = Stopwatch::start();
            let answer = workload::run(&mut engine, &snap, q, 10);
            if i >= 20 {
                time += t0.elapsed();
            }
            evals += answer.s1_evals;
            if i % 5 == 0 {
                prec += workload::precision_vs_reference(&engine, &snap, q, 10, &answer);
                n_prec += 1;
            }
        }
        t.row(vec![
            format!("{eps}"),
            fmt_duration(time / (queries.len() - 20).max(1) as u32),
            format!("{:.4}", prec / n_prec.max(1) as f64),
            (evals / queries.len() as u64).to_string(),
        ]);
    }
    t.emit(out, "abl_eps");
}

fn ablation_beta(scale: Scale, out: &Path) {
    let p = setup::freebase(scale, dim(scale));
    let queries = workload::generate(&p.dataset.graph, 120, 0xAB03);
    let mut t = Table::new(
        "Ablation: overlap-cost base β — split quality vs steady time",
        &["beta", "steady avg", "splits", "nodes"],
    );
    // β reweights overlap costs *across tree levels*, which only matters
    // when whole change candidates are compared — i.e. under the
    // Algorithm 2 search (a greedy run ranks candidates within one node,
    // where β^h is a common factor).
    for beta in [1.0f64, 1.5, 2.0, 4.0] {
        let cfg = VkgConfig {
            beta,
            split_strategy: SplitStrategy::TopK { choices: 3 },
            ..setup::bench_config()
        };
        let snap = p.snapshot(cfg);
        let mut engine = IndexState::cracking(&snap);
        let mut time = Duration::ZERO;
        for (i, q) in queries.iter().enumerate() {
            let t0 = Stopwatch::start();
            let _ = workload::run(&mut engine, &snap, q, 10);
            if i >= 20 {
                time += t0.elapsed();
            }
        }
        let s = engine.stats();
        t.row(vec![
            format!("{beta}"),
            fmt_duration(time / (queries.len() - 20).max(1) as u32),
            s.counters.splits_performed.to_string(),
            s.nodes.to_string(),
        ]);
    }
    t.emit(out, "abl_beta");
}

fn ablation_shards(scale: Scale, out: &Path) {
    // Sharding is answer-preserving (the crack log replays every crack
    // on every shard), so this axis measures only what the replication
    // costs a single-threaded query stream: journal appends plus
    // sibling replay, paid once per shard the workload touches. The
    // environment's VKG_SHARDS is deliberately ignored — the sweep IS
    // the shard axis.
    let p = setup::movie(scale, dim(scale));
    let queries = workload::generate(&p.dataset.graph, 220, 0x5AAD);
    let mut runs = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let cfg = VkgConfig {
            shards,
            ..setup::bench_config()
        };
        let snap = p.snapshot(cfg);
        runs.push(run_method(
            &format!("cracking R-tree, {shards} shard(s)"),
            &snap,
            &queries,
            10,
            scale,
            false,
            || Box::new(ShardedEngine::cracking(&snap)),
        ));
    }
    time_table(
        "Ablation: engine shard count (crack-log replication overhead)",
        &runs,
    )
    .emit(out, "abl_shards");
}

fn ablation_cost(scale: Scale, out: &Path) {
    // §IV-B1's claim: ranking splits by (c_Q, c_O) instead of overlap
    // alone buys slightly better steady-state query time, because splits
    // keep each workload region's points in fewer pages.
    let p = setup::freebase(scale, dim(scale));
    let queries = workload::generate(&p.dataset.graph, 220, 0xAB04);
    let mut t = Table::new(
        "Ablation: two-component (c_Q, c_O) split cost vs overlap-only",
        &["cost model", "steady avg", "mean points examined", "nodes"],
    );
    for (name, aware) in [("two-component (paper)", true), ("overlap-only", false)] {
        let cfg = VkgConfig {
            query_aware_cost: aware,
            ..setup::bench_config()
        };
        let snap = p.snapshot(cfg);
        let mut engine = IndexState::cracking(&snap);
        let mut time = Duration::ZERO;
        let mut examined = 0u64;
        for (i, q) in queries.iter().enumerate() {
            engine.reset_access_counters();
            let t0 = Stopwatch::start();
            let _ = workload::run(&mut engine, &snap, q, 10);
            if i >= 20 {
                time += t0.elapsed();
                examined += engine.stats().counters.points_examined;
            }
        }
        let steady_n = (queries.len() - 20) as u64;
        t.row(vec![
            name.into(),
            fmt_duration(time / steady_n as u32),
            (examined / steady_n).to_string(),
            engine.stats().nodes.to_string(),
        ]);
    }
    t.emit(out, "abl_cost");
}
