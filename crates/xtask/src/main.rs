//! Workspace automation. One subcommand so far:
//!
//! ```text
//! cargo run -p xtask -- lint [--github] [--self-test] [--strict]
//!                            [--baseline] [--write-baseline]
//! ```
//!
//! Lints every `.rs` file under `crates/` and `tests/` with the
//! two-layer engine in [`rules`]: token rules over the scrubbed text,
//! plus semantic rules (lock-order, request-path panic audit, ordering
//! justification, wire exhaustiveness) over the item model and call
//! graph built by [`parser`]/[`callgraph`] against the declared model
//! in `crates/xtask/lockorder.toml`. See `DESIGN.md` §3.3 and §3.7.
//!
//! * `--github` — GitHub Actions `::error` annotations.
//! * `--self-test` — run the rules against `crates/xtask/fixtures/`,
//!   exact-matching each fixture's `// expect:` lines both directions.
//! * `--strict` — additionally report `unused-allow` (a valid
//!   suppression that suppressed nothing) as a failure.
//! * `--write-baseline` — snapshot current findings to
//!   `crates/xtask/lint.baseline`.
//! * `--baseline` — compare against the snapshot: only *new* findings
//!   fail; entries in the snapshot that no longer fire are noted as
//!   stale so the baseline can be shrunk, never silently grown.

mod callgraph;
mod lexer;
mod model;
mod parser;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rules::{Finding, LintReport};

const BASELINE_PATH: &str = "crates/xtask/lint.baseline";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let flag = |name: &str| args.iter().any(|a| a == name);
            let github = flag("--github");
            let root = repo_root();
            if flag("--self-test") {
                return match self_test(&root) {
                    Ok(report) => {
                        println!("{report}");
                        ExitCode::SUCCESS
                    }
                    Err(failures) => {
                        for f in &failures {
                            eprintln!("{f}");
                        }
                        eprintln!("lint self-test: {} failure(s)", failures.len());
                        ExitCode::FAILURE
                    }
                };
            }
            let (checked, report) = lint_workspace(&root);
            let mut findings = report.findings;
            if flag("--strict") {
                findings.extend(report.unused_allows);
            }
            if flag("--write-baseline") {
                let body: String = findings
                    .iter()
                    .map(|f| format!("{}\n", f.baseline_key()))
                    .collect();
                let path = root.join(BASELINE_PATH);
                if let Err(e) = std::fs::write(&path, body) {
                    eprintln!("lint: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!(
                    "lint: baseline of {} finding(s) written to {BASELINE_PATH}",
                    findings.len()
                );
                return ExitCode::SUCCESS;
            }
            if flag("--baseline") {
                let path = root.join(BASELINE_PATH);
                let Ok(snapshot) = std::fs::read_to_string(&path) else {
                    eprintln!(
                        "lint: no baseline at {BASELINE_PATH}; run with --write-baseline first"
                    );
                    return ExitCode::FAILURE;
                };
                let known: Vec<&str> = snapshot.lines().filter(|l| !l.is_empty()).collect();
                let new: Vec<&Finding> = findings
                    .iter()
                    .filter(|f| !known.contains(&f.baseline_key().as_str()))
                    .collect();
                let stale: Vec<&&str> = known
                    .iter()
                    .filter(|k| findings.iter().all(|f| f.baseline_key() != ***k))
                    .collect();
                for f in &new {
                    if github {
                        println!("{}", f.render_github());
                    } else {
                        println!("{}", f.render());
                    }
                }
                for k in &stale {
                    println!("lint: baseline entry no longer fires (prune it): {k}");
                }
                return if new.is_empty() {
                    println!(
                        "lint: {checked} files, no findings beyond the {}-entry baseline",
                        known.len()
                    );
                    ExitCode::SUCCESS
                } else {
                    eprintln!("lint: {} new finding(s) beyond the baseline", new.len());
                    ExitCode::FAILURE
                };
            }
            for f in &findings {
                if github {
                    println!("{}", f.render_github());
                } else {
                    println!("{}", f.render());
                }
            }
            if findings.is_empty() {
                println!("lint: {checked} files clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("lint: {} finding(s) across {checked} files", findings.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- lint [--github] [--self-test] [--strict] \
                 [--baseline] [--write-baseline]"
            );
            ExitCode::from(2)
        }
    }
}

fn repo_root() -> PathBuf {
    // crates/xtask → repo root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels under the repo root")
        .to_path_buf()
}

/// Lints all sources under `crates/` and the top-level `tests/` as one
/// workspace (the call-graph rules need every file at once). Returns
/// `(files_checked, report)`.
fn lint_workspace(root: &Path) -> (usize, LintReport) {
    let mut paths = Vec::new();
    collect_rs(&root.join("crates"), &mut paths);
    collect_rs(&root.join("tests"), &mut paths);
    paths.sort();
    let mut files: Vec<(String, String)> = Vec::new();
    for path in &paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if rel.starts_with("crates/xtask/fixtures/") {
            continue; // deliberately-bad inputs
        }
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        files.push((rel, src));
    }
    let design = std::fs::read_to_string(root.join("DESIGN.md")).ok();
    let report = rules::lint_files(&files, &model::default_config(), design.as_deref());
    (files.len(), report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Runs the rules over the fixture corpus. Every fixture declares the
/// path it pretends to live at (`// pretend: <path>`) and marks each
/// line that must fire with `// expect: <rule> [<rule>…]`. The test
/// fails on any missing or unexpected finding, so the fixtures prove
/// both directions: rules fire where they must and nowhere else.
fn self_test(root: &Path) -> Result<String, Vec<String>> {
    let dir = root.join("crates/xtask/fixtures");
    let mut fixtures: Vec<PathBuf> = Vec::new();
    collect_rs(&dir, &mut fixtures);
    fixtures.sort();
    let mut failures = Vec::new();
    let mut total_expected = 0usize;
    if fixtures.is_empty() {
        failures.push(format!("no fixtures found under {}", dir.display()));
    }
    for fixture in &fixtures {
        let name = fixture.file_name().unwrap_or_default().to_string_lossy();
        let Ok(src) = std::fs::read_to_string(fixture) else {
            failures.push(format!("{name}: unreadable"));
            continue;
        };
        let scrubbed = lexer::scrub(&src);
        let Some(pretend) = scrubbed
            .comments
            .iter()
            .find_map(|c| c.text.strip_prefix("pretend: ").map(str::to_string))
        else {
            failures.push(format!("{name}: missing `// pretend: <path>` header"));
            continue;
        };
        // (line, rule) pairs the fixture promises.
        let mut expected: Vec<(usize, String)> = Vec::new();
        for c in &scrubbed.comments {
            if let Some(pos) = c.text.find("expect: ") {
                for rule in c.text[pos + "expect: ".len()..].split_whitespace() {
                    expected.push((c.line, rule.to_string()));
                }
            }
        }
        total_expected += expected.len();
        let mut actual: Vec<(usize, String)> = rules::lint_source(&pretend, &src)
            .into_iter()
            .map(|f| (f.line, f.rule.to_string()))
            .collect();
        expected.sort();
        actual.sort();
        for miss in expected.iter().filter(|e| !actual.contains(e)) {
            failures.push(format!(
                "{name}:{}: expected `{}` to fire, it did not",
                miss.0, miss.1
            ));
        }
        for extra in actual.iter().filter(|a| !expected.contains(a)) {
            failures.push(format!(
                "{name}:{}: unexpected `{}` finding",
                extra.0, extra.1
            ));
        }
    }
    if failures.is_empty() {
        Ok(format!(
            "lint self-test: {} fixtures, {total_expected} expected findings, all matched",
            fixtures.len()
        ))
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_is_lint_clean() {
        let (checked, report) = lint_workspace(&repo_root());
        assert!(checked > 20, "walker found only {checked} files");
        assert!(
            report.findings.is_empty(),
            "workspace has lint findings:\n{}",
            report
                .findings
                .iter()
                .map(rules::Finding::render)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            report.unused_allows.is_empty(),
            "workspace has stale lint allows:\n{}",
            report
                .unused_allows
                .iter()
                .map(rules::Finding::render)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn fixtures_prove_every_rule_fires() {
        match self_test(&repo_root()) {
            Ok(report) => {
                // Every rule in the catalogue must be covered by at
                // least one fixture expectation.
                let dir = repo_root().join("crates/xtask/fixtures");
                let mut all = String::new();
                let mut files = Vec::new();
                collect_rs(&dir, &mut files);
                for f in files {
                    all.push_str(&std::fs::read_to_string(f).expect("fixture readable"));
                }
                for rule in rules::RULES {
                    assert!(
                        all.contains(&format!("expect: {rule}"))
                            || all.contains(&format!("{rule} ")),
                        "no fixture covers rule {rule}"
                    );
                }
                assert!(report.contains("all matched"));
            }
            Err(failures) => panic!("fixture self-test failed:\n{}", failures.join("\n")),
        }
    }

    #[test]
    fn baseline_keys_are_stable_identities() {
        let f = Finding {
            file: "crates/server/src/wire.rs".into(),
            line: 12,
            col: 9,
            rule: "no-unwrap",
            message: "wording may change".into(),
        };
        assert_eq!(f.baseline_key(), "crates/server/src/wire.rs:12:no-unwrap");
    }
}
