//! Internal probe: per-query index work at standard scale.
use vkg::prelude::*;
use vkg_bench::{
    setup::{self, Scale},
    workload,
};

fn main() {
    let p = setup::freebase(Scale::Standard, 48);
    let n = p.dataset.graph.num_entities();
    let snap = p.snapshot(setup::bench_config());
    let mut engine = IndexState::cracking(&snap);
    let queries = workload::generate(&p.dataset.graph, 60, 0xDEAD);
    for (i, q) in queries.iter().enumerate() {
        engine.reset_access_counters();
        let r = workload::run(&mut engine, &snap, q, 10);
        let s = engine.stats();
        if i % 10 == 0 {
            println!(
                "q{i:>3}: candidates={:>6} points_examined={:>6} elements={:>4} s1={:>5} nodes={} (n={n})",
                r.candidates_examined,
                s.counters.points_examined,
                s.counters.elements_accessed,
                s.counters.s1_distance_evals,
                s.nodes
            );
        }
    }
}
