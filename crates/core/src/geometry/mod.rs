//! Geometry in the low-dimensional index space S₂.

pub mod kernels;
pub mod mbr;
pub mod points;

pub use mbr::{Mbr, MAX_DIM};
pub use points::PointSet;
