//! End-to-end serving tests against a live loopback server: concurrent
//! clients + a dynamic writer, epoch-consistent answers matching the
//! in-process engine, explicit load shedding under an undersized queue,
//! deadline enforcement, graceful drain, and fail-closed handling of
//! malformed frames.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use vkg_core::query::aggregate::AggregateKind;
use vkg_core::vkg::VirtualKnowledgeGraph;
use vkg_core::{Direction, VkgConfig};
use vkg_embed::{TransE, TransEConfig};
use vkg_kg::datasets::{movie_like, MovieConfig};
use vkg_kg::{EntityId, RelationId};
use vkg_obs::{Clock, SpanOutcome};
use vkg_server::wire::{read_frame, write_frame, MAX_FRAME};
use vkg_server::{
    Client, ClientError, ErrorCode, Request, RequestOp, Response, Server, ServerConfig,
};

/// Users occupy ids `0..60` and movies `60..180` in the tiny movie
/// dataset; relation 0 is valid for every query direction.
const USERS: u32 = 60;
const MOVIES: u32 = 120;

fn build_vkg() -> Arc<VirtualKnowledgeGraph> {
    let ds = movie_like(&MovieConfig::tiny());
    let (embeddings, _) = TransE::new(TransEConfig {
        dim: 16,
        epochs: 6,
        ..TransEConfig::default()
    })
    .train(&ds.graph);
    Arc::new(VirtualKnowledgeGraph::assemble(
        ds.graph,
        ds.attributes,
        embeddings,
        VkgConfig::default(),
    ))
}

fn start(vkg: &Arc<VirtualKnowledgeGraph>, cfg: ServerConfig) -> vkg_server::ServerHandle {
    Server::start(Arc::clone(vkg), "127.0.0.1:0", cfg).expect("bind loopback")
}

/// The headline acceptance test: ≥4 concurrent clients issue top-k and
/// aggregate queries against a live loopback server while a writer
/// appends dynamic facts. Every accepted request gets a well-formed
/// response; after the writer stops, responses match the in-process
/// engine at the same (final) snapshot epoch.
#[test]
fn concurrent_clients_with_dynamic_writer_match_engine() {
    let vkg = build_vkg();
    let handle = start(
        &vkg,
        ServerConfig {
            workers: 4,
            queue_capacity: 512,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    // Phase 1: query storm under concurrent writes.
    let writer = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("writer connects");
        let mut published = 0u64;
        for i in 0..16u32 {
            let (added, epoch) = client
                .add_fact(
                    EntityId(i % USERS),
                    RelationId(0),
                    EntityId(USERS + (i * 7) % MOVIES),
                    2,
                    0.01,
                )
                .expect("dynamic write is answered");
            if added {
                published = epoch;
            }
            thread::sleep(Duration::from_millis(2));
        }
        published
    });

    let readers: Vec<_> = (0..4)
        .map(|t| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("reader connects");
                let mut last_epoch = 0u64;
                for i in 0..30u32 {
                    let entity = EntityId((t * 13 + i) % USERS);
                    if i % 2 == 0 {
                        let top = client
                            .top_k(entity, RelationId(0), Direction::Tails, 5)
                            .expect("top-k is answered");
                        assert!(top.predictions.len() <= 5);
                        for w in top.predictions.windows(2) {
                            assert!(w[0].distance <= w[1].distance, "ascending by distance");
                        }
                        assert!(top.epoch >= last_epoch, "epochs never move backwards");
                        last_epoch = top.epoch;
                    } else {
                        let agg = client
                            .aggregate(
                                entity,
                                RelationId(0),
                                Direction::Tails,
                                AggregateKind::Count,
                                None,
                                0.05,
                                None,
                            )
                            .expect("aggregate is answered");
                        assert!(agg.estimate >= 0.0);
                        assert!(agg.epoch >= last_epoch, "epochs never move backwards");
                        last_epoch = agg.epoch;
                    }
                }
                last_epoch
            })
        })
        .collect();

    let final_write_epoch = writer.join().expect("writer thread");
    for r in readers {
        r.join().expect("reader thread");
    }
    assert!(final_write_epoch > 0, "the writer published new epochs");

    // Phase 2: the writer is quiet, so the epoch is pinned; remote
    // answers must now equal the in-process engine's bit-for-bit.
    let final_epoch = vkg.epoch();
    assert!(final_epoch >= final_write_epoch);
    let mut client = Client::connect(addr).expect("verification client connects");
    for t in 0..4u32 {
        let entity = EntityId((t * 17) % USERS);
        let remote = client
            .top_k(entity, RelationId(0), Direction::Tails, 5)
            .expect("top-k answered");
        assert_eq!(remote.epoch, final_epoch, "answer pinned to the live epoch");
        let local = vkg
            .top_k(entity, RelationId(0), Direction::Tails, 5)
            .expect("in-process answer");
        assert_eq!(remote.predictions.len(), local.predictions.len());
        for (rp, lp) in remote.predictions.iter().zip(&local.predictions) {
            assert_eq!(rp.id, lp.id);
            assert_eq!(rp.distance, lp.distance);
            assert_eq!(rp.probability, lp.probability);
        }
        assert_eq!(
            remote.success_probability,
            local.guarantee.success_probability
        );

        let remote_agg = client
            .aggregate(
                entity,
                RelationId(0),
                Direction::Tails,
                AggregateKind::Count,
                None,
                0.05,
                None,
            )
            .expect("aggregate answered");
        assert_eq!(remote_agg.epoch, final_epoch);
        let spec = vkg_core::AggregateSpec::count(0.05);
        let local_agg = vkg
            .aggregate(entity, RelationId(0), Direction::Tails, &spec)
            .expect("in-process aggregate");
        assert_eq!(remote_agg.estimate, local_agg.estimate);
        assert_eq!(remote_agg.ball_size as usize, local_agg.ball_size);
    }

    // Every admitted request was answered.
    let counters = handle.shutdown();
    assert_eq!(counters.admitted, counters.answered);
    assert_eq!(counters.shed, 0, "the full-size queue never shed");
}

/// With a deliberately undersized queue and a slow worker, concurrent
/// clients are shed with a typed `Overloaded` response — the server
/// neither stalls nor panics, and every admitted request is answered.
#[test]
fn undersized_queue_sheds_with_typed_overloaded() {
    let vkg = build_vkg();
    let handle = start(
        &vkg,
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            worker_think_time: Some(Duration::from_millis(40)),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    let clients = 12;
    let barrier = Arc::new(Barrier::new(clients));
    let threads: Vec<_> = (0..clients)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                barrier.wait();
                match client.top_k(
                    EntityId(t as u32 % USERS),
                    RelationId(0),
                    Direction::Tails,
                    3,
                ) {
                    Ok(_) => (1u32, 0u32),
                    Err(ClientError::Server(e)) => {
                        assert_eq!(e.code, ErrorCode::Overloaded, "only overload refusals");
                        (0, 1)
                    }
                    Err(other) => panic!("no transport errors under overload: {other}"),
                }
            })
        })
        .collect();

    let (mut ok, mut shed) = (0, 0);
    for t in threads {
        let (o, s) = t.join().expect("client thread");
        ok += o;
        shed += s;
    }
    assert_eq!(ok + shed, clients as u32, "every request got a response");
    assert!(ok >= 1, "the admitted requests completed");
    assert!(shed >= 1, "the undersized queue shed load");

    let counters = handle.shutdown();
    assert_eq!(counters.admitted, counters.answered);
    assert_eq!(counters.shed as u32, shed);
}

/// Requests that overstay their deadline in the queue are refused with
/// `DeadlineExceeded` instead of being executed late.
#[test]
fn queued_requests_past_deadline_are_refused() {
    let vkg = build_vkg();
    let handle = start(
        &vkg,
        ServerConfig {
            workers: 1,
            queue_capacity: 16,
            worker_think_time: Some(Duration::from_millis(50)),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    let clients = 6;
    let barrier = Arc::new(Barrier::new(clients));
    let threads: Vec<_> = (0..clients)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                client.set_deadline(Some(Duration::from_millis(10)));
                barrier.wait();
                match client.top_k(
                    EntityId(t as u32 % USERS),
                    RelationId(0),
                    Direction::Tails,
                    3,
                ) {
                    Ok(_) => 0u32,
                    Err(ClientError::Server(e)) => {
                        assert_eq!(e.code, ErrorCode::DeadlineExceeded);
                        1
                    }
                    Err(other) => panic!("unexpected failure kind: {other}"),
                }
            })
        })
        .collect();

    let expired: u32 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(
        expired >= 1,
        "queued-behind-a-slow-worker requests expired their 10ms deadline"
    );
    let counters = handle.shutdown();
    assert_eq!(counters.admitted, counters.answered);
    assert_eq!(counters.deadline_expired as u32, expired);
}

/// Regression test for the batched-deadline bug: a request grouped
/// behind same-shard siblings must be re-checked against *its own*
/// deadline **after** the shard lock is acquired, because siblings
/// executing ahead of it inside the lock consume real time. Without the
/// post-lock re-check, late group members would execute (and bill their
/// think time) long past the deadline the client was promised.
///
/// One worker with a 25ms think time serves 8 same-shard requests
/// carrying 60ms deadlines: the first batch member(s) answer in time,
/// and members queued behind ≥2 siblings' think time must be refused
/// with `DeadlineExceeded` — never executed late, never dropped.
#[test]
fn batched_requests_expiring_after_lock_are_refused_not_executed() {
    let vkg = build_vkg();
    let handle = start(
        &vkg,
        ServerConfig {
            workers: 1,
            queue_capacity: 64,
            batch_max: 8,
            worker_think_time: Some(Duration::from_millis(25)),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    let clients = 8;
    let barrier = Arc::new(Barrier::new(clients));
    let threads: Vec<_> = (0..clients)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                client.set_deadline(Some(Duration::from_millis(60)));
                barrier.wait();
                match client.top_k(
                    EntityId(t as u32 % USERS),
                    RelationId(0),
                    Direction::Tails,
                    3,
                ) {
                    Ok(_) => (1u32, 0u32),
                    Err(ClientError::Server(e)) => {
                        assert_eq!(e.code, ErrorCode::DeadlineExceeded);
                        (0, 1)
                    }
                    Err(other) => panic!("unexpected failure kind: {other}"),
                }
            })
        })
        .collect();

    let (mut ok, mut expired) = (0u32, 0u32);
    for t in threads {
        let (o, e) = t.join().expect("client thread");
        ok += o;
        expired += e;
    }
    assert_eq!(ok + expired, clients as u32, "every request got a response");
    assert!(ok >= 1, "the front of the batch answered within deadline");
    assert!(
        expired >= 1,
        "members queued behind siblings' in-lock think time expired"
    );

    // The refusals really came from batched execution: the worker
    // drained same-shard groups larger than one.
    let mut probe = Client::connect(addr).expect("metrics client connects");
    let m = probe.metrics(0).expect("metrics answered");
    let batch = m.snapshot.hist("server.batch_size").expect("batch hist");
    assert!(
        batch.max_us >= 2,
        "the worker formed a multi-request batch (max {})",
        batch.max_us
    );

    drop(probe);
    let counters = handle.shutdown();
    assert_eq!(counters.admitted, counters.answered, "no request dropped");
    assert_eq!(counters.deadline_expired as u32, expired);
}

/// Batching and the result cache together on a live server: concurrent
/// repeat-heavy readers with a dynamic writer, then quiescent answers
/// verified bit-for-bit against the in-process engine. The cache must
/// actually hit and batches must actually form — while every admitted
/// request is still answered.
#[test]
fn batched_cached_serving_stays_correct_under_writes() {
    let ds = movie_like(&MovieConfig::tiny());
    let (embeddings, _) = TransE::new(TransEConfig {
        dim: 16,
        epochs: 6,
        ..TransEConfig::default()
    })
    .train(&ds.graph);
    let vkg = Arc::new(VirtualKnowledgeGraph::assemble(
        ds.graph,
        ds.attributes,
        embeddings,
        VkgConfig {
            shards: 2,
            cache_capacity: 1024,
            ..VkgConfig::default()
        },
    ));
    let handle = start(
        &vkg,
        ServerConfig {
            workers: 4,
            queue_capacity: 512,
            batch_max: 4,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    let writer = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("writer connects");
        for i in 0..12u32 {
            client
                .add_fact(
                    EntityId(i % USERS),
                    RelationId(0),
                    EntityId(USERS + (i * 7) % MOVIES),
                    2,
                    0.01,
                )
                .expect("dynamic write is answered");
            thread::sleep(Duration::from_millis(3));
        }
    });
    // A tiny entity window and repeated k keep the workload cache-hot.
    let readers: Vec<_> = (0..4)
        .map(|t| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("reader connects");
                for i in 0..40u32 {
                    let entity = EntityId((t + i) % 4);
                    let relation = RelationId(i % 2);
                    let top = client
                        .top_k(entity, relation, Direction::Tails, 5)
                        .expect("top-k is answered");
                    assert!(top.predictions.len() <= 5);
                    for w in top.predictions.windows(2) {
                        assert!(w[0].distance <= w[1].distance, "ascending by distance");
                    }
                }
            })
        })
        .collect();
    writer.join().expect("writer thread");
    for r in readers {
        r.join().expect("reader thread");
    }

    // Quiescent: remote answers equal the in-process engine's exactly.
    let mut client = Client::connect(addr).expect("verification client");
    for entity in 0..4u32 {
        let remote = client
            .top_k(EntityId(entity), RelationId(0), Direction::Tails, 5)
            .expect("top-k answered");
        let local = vkg
            .top_k(EntityId(entity), RelationId(0), Direction::Tails, 5)
            .expect("in-process answer");
        assert_eq!(remote.predictions.len(), local.predictions.len());
        for (rp, lp) in remote.predictions.iter().zip(&local.predictions) {
            assert_eq!(rp.id, lp.id);
            assert_eq!(rp.distance, lp.distance);
            assert_eq!(rp.probability, lp.probability);
        }
    }

    let m = client.metrics(0).expect("metrics answered");
    assert!(
        m.snapshot.counter("core.cache.hit").unwrap_or(0) > 0,
        "the repeat-heavy workload hit the cache"
    );
    let answered = m.snapshot.gauge("server.answered").expect("answered gauge");
    let rounds = m
        .snapshot
        .counter("server.lock_rounds")
        .expect("lock rounds");
    assert!(
        rounds <= answered,
        "batching never takes more lock rounds than answers ({rounds} vs {answered})"
    );

    drop(client);
    let counters = handle.shutdown();
    assert_eq!(counters.admitted, counters.answered);
    vkg.index().check_invariants();
}

/// A client-initiated `Shutdown` drains gracefully: the acknowledgement
/// arrives, in-flight work is answered (admitted == answered), all
/// threads join, and the listener stops accepting.
#[test]
fn client_shutdown_drains_without_dropping_requests() {
    let vkg = build_vkg();
    let handle = start(
        &vkg,
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            worker_think_time: Some(Duration::from_millis(5)),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    // Keep a few requests in flight while the drain is triggered.
    let inflight: Vec<_> = (0..4)
        .map(|t| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut outcomes = Vec::new();
                for i in 0..10u32 {
                    let res = client.top_k(
                        EntityId((t * 11 + i) % USERS),
                        RelationId(0),
                        Direction::Tails,
                        3,
                    );
                    match res {
                        // Admitted work is always answered in full.
                        Ok(_) => outcomes.push(true),
                        // Refused-at-the-door during drain is the only
                        // acceptable server-side refusal here.
                        Err(ClientError::Server(e)) => {
                            assert_eq!(e.code, ErrorCode::Draining);
                            outcomes.push(false);
                        }
                        // The connection may also die once the drain
                        // finishes between calls.
                        Err(_) => break,
                    }
                }
                outcomes
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(30));
    let mut control = Client::connect(addr).expect("control client connects");
    control.shutdown().expect("shutdown acknowledged");

    for t in inflight {
        let outcomes = t.join().expect("in-flight client");
        assert!(outcomes.iter().any(|&ok| ok), "clients made progress");
    }

    let counters = handle.join();
    assert_eq!(
        counters.admitted, counters.answered,
        "graceful drain answers every admitted request"
    );
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err(),
        "the drained server no longer accepts connections"
    );
}

/// Raw-socket abuse: malformed frames get a typed `MalformedRequest`
/// error and a closed connection — never a panic — and the server keeps
/// serving well-behaved clients afterwards.
#[test]
fn malformed_frames_fail_closed_and_server_survives() {
    let vkg = build_vkg();
    let handle = start(&vkg, ServerConfig::default());
    let addr = handle.addr();

    let expect_error_then_close = |payload: &[u8]| {
        let mut raw = TcpStream::connect(addr).expect("raw connect");
        write_frame(&mut raw, payload).expect("frame written");
        let resp = read_frame(&mut raw, MAX_FRAME)
            .expect("typed error frame")
            .expect("response before close");
        match Response::decode(&resp).expect("well-formed error response") {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::MalformedRequest),
            other => panic!("wanted a MalformedRequest error, got {other:?}"),
        }
        // The server fails the connection closed after the error.
        let mut rest = Vec::new();
        let _ = raw.read_to_end(&mut rest);
        assert!(rest.is_empty(), "nothing follows the typed error");
    };

    // Unknown opcode.
    expect_error_then_close(&[vkg_server::WIRE_VERSION, 0x7C, 0, 0, 0, 0]);
    // Foreign protocol version.
    expect_error_then_close(&{
        let mut p = Request {
            deadline_ms: 0,
            op: RequestOp::Stats,
        }
        .encode();
        p[0] = 9;
        p
    });
    // Truncated body (frame shorter than its message).
    expect_error_then_close(&[vkg_server::WIRE_VERSION, 0x01, 0, 0]);

    // Oversized declared length: refused before buffering the body.
    {
        let mut raw = TcpStream::connect(addr).expect("raw connect");
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        raw.write_all(&huge).expect("length prefix written");
        let resp = read_frame(&mut raw, MAX_FRAME)
            .expect("typed error frame")
            .expect("response before close");
        match Response::decode(&resp).expect("well-formed error response") {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::MalformedRequest),
            other => panic!("wanted a MalformedRequest error, got {other:?}"),
        }
    }

    // A truncated length prefix followed by a hangup is just a closed
    // connection — no response owed, no panic.
    {
        let mut raw = TcpStream::connect(addr).expect("raw connect");
        raw.write_all(&[3, 0]).expect("partial prefix written");
        drop(raw);
    }

    // The server is still healthy for well-behaved clients.
    let mut client = Client::connect(addr).expect("healthy client connects");
    let top = client
        .top_k(EntityId(0), RelationId(0), Direction::Tails, 3)
        .expect("server survived the abuse");
    assert!(top.predictions.len() <= 3);
    let counters = handle.shutdown();
    assert_eq!(counters.admitted, counters.answered);
}

/// Well-formed frames carrying resource-exhaustion parameters are
/// sanitized at admission: an absurd `k` is clamped (no multi-GiB
/// allocation, the answer still arrives), an unbounded refinement
/// budget and a non-finite learning rate are refused with typed `Query`
/// errors, and the shared embeddings stay unpoisoned throughout.
#[test]
fn extreme_parameters_are_sanitized_not_fatal() {
    let vkg = build_vkg();
    let handle = start(&vkg, ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("client connects");

    // k = u32::MAX: clamped to the entity count, answered normally.
    let top = client
        .top_k(
            EntityId(0),
            RelationId(0),
            Direction::Tails,
            u32::MAX as usize,
        )
        .expect("clamped top-k is answered");
    assert!(top.predictions.len() <= vkg.graph().num_entities());
    assert!(!top.predictions.is_empty());

    // A write demanding billions of gradient steps under the engine
    // write lock is refused before execution.
    match client.add_fact(
        EntityId(0),
        RelationId(0),
        EntityId(USERS),
        u32::MAX as usize,
        0.01,
    ) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, ErrorCode::Query);
            assert!(e.message.contains("refine_steps"), "typed cause: {e}");
        }
        other => panic!("oversized refine_steps must be refused, got {other:?}"),
    }

    // Non-finite and out-of-range learning rates are refused before
    // they can touch the shared embeddings.
    for lr in [f64::NAN, f64::INFINITY, -0.5, 2.0] {
        match client.add_fact(EntityId(1), RelationId(0), EntityId(USERS + 1), 2, lr) {
            Err(ClientError::Server(e)) => {
                assert_eq!(e.code, ErrorCode::Query);
                assert!(e.message.contains("learning_rate"), "typed cause: {e}");
            }
            other => panic!("learning_rate {lr} must be refused, got {other:?}"),
        }
    }
    assert_eq!(vkg.epoch(), 0, "no refused write published an epoch");

    // The embeddings were never poisoned: answers still match the
    // in-process engine and carry finite distances.
    let remote = client
        .top_k(EntityId(2), RelationId(0), Direction::Tails, 5)
        .expect("server still healthy");
    let local = vkg
        .top_k(EntityId(2), RelationId(0), Direction::Tails, 5)
        .expect("in-process answer");
    assert_eq!(
        remote.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
        local.predictions.iter().map(|p| p.id).collect::<Vec<_>>()
    );
    assert!(remote.predictions.iter().all(|p| p.distance.is_finite()));

    let counters = handle.shutdown();
    assert_eq!(counters.admitted, counters.answered);
}

/// `Stats` reports the live epoch, engine counters, and the
/// admission-control ledger; it stays answerable while queries flow.
#[test]
fn stats_reports_epoch_accuracy_and_ledger() {
    let vkg = build_vkg();
    let handle = start(&vkg, ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("client connects");

    client
        .top_k(EntityId(1), RelationId(0), Direction::Tails, 4)
        .expect("top-k");
    let (added, epoch) = client
        .add_fact(EntityId(2), RelationId(0), EntityId(USERS + 5), 2, 0.01)
        .expect("dynamic write");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.epoch, vkg.epoch());
    if added {
        assert_eq!(stats.epoch, epoch, "stats sees the post-write epoch");
    }
    assert!(stats.nodes >= 1);
    assert!(
        stats.s1_distance_evals >= 1,
        "the top-k evaluated distances"
    );
    assert_eq!(stats.server.admitted, 2, "stats itself bypasses admission");
    assert_eq!(stats.server.answered, 2);
    assert_eq!(stats.server.shed, 0);

    let name_filtered = client
        .top_k_filtered(
            EntityId(0),
            RelationId(0),
            Direction::Tails,
            5,
            vkg_server::WireFilter::NamePrefix("movie_".into()),
        )
        .expect("filtered top-k");
    let graph = vkg.graph();
    for p in &name_filtered.predictions {
        let name = graph.entity_name(EntityId(p.id)).expect("named entity");
        assert!(name.starts_with("movie_"), "filter applied server-side");
    }

    let counters = handle.shutdown();
    assert_eq!(counters.admitted, counters.answered);
}

/// Sharded serving independence: relations 0 and 1 hash to different
/// shards at shard count 2, so a writer hammering one relation holds
/// only its own shard's lock. Readers on *both* relations must make
/// progress while both writers are mid-burst — a global engine lock
/// would stall one side and trip the progress deadline. Per-shard
/// admission counters confirm traffic really landed on two shards.
#[test]
fn writers_on_two_relations_do_not_block_each_others_readers() {
    let ds = movie_like(&MovieConfig::tiny());
    let (embeddings, _) = TransE::new(TransEConfig {
        dim: 16,
        epochs: 6,
        ..TransEConfig::default()
    })
    .train(&ds.graph);
    let vkg = Arc::new(VirtualKnowledgeGraph::assemble(
        ds.graph,
        ds.attributes,
        embeddings,
        VkgConfig {
            shards: 2,
            ..VkgConfig::default()
        },
    ));
    let handle = start(
        &vkg,
        ServerConfig {
            workers: 4,
            queue_capacity: 512,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let gate = Arc::new(Barrier::new(4));
    let writers: Vec<_> = [RelationId(0), RelationId(1)]
        .into_iter()
        .map(|relation| {
            let stop = Arc::clone(&stop);
            let gate = Arc::clone(&gate);
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("writer connects");
                gate.wait();
                let mut writes = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let i = writes;
                    client
                        .add_fact(
                            EntityId(i % USERS),
                            relation,
                            EntityId(USERS + (i * 11 + relation.0 * 3) % MOVIES),
                            2,
                            0.01,
                        )
                        .expect("dynamic write is answered");
                    writes += 1;
                }
                writes
            })
        })
        .collect();

    // Readers on the two relations run to completion *while* the
    // writers keep writing; a deadline turns "reads blocked behind the
    // other relation's writer" into a hard failure.
    let (tx, rx) = std::sync::mpsc::channel();
    let readers: Vec<_> = [RelationId(0), RelationId(1)]
        .into_iter()
        .map(|relation| {
            let gate = Arc::clone(&gate);
            let tx = tx.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("reader connects");
                gate.wait();
                for i in 0..25u32 {
                    let top = client
                        .top_k(EntityId(i % USERS), relation, Direction::Tails, 5)
                        .expect("top-k is answered");
                    assert!(top.predictions.len() <= 5);
                    for w in top.predictions.windows(2) {
                        assert!(w[0].distance <= w[1].distance, "ascending by distance");
                    }
                }
                tx.send(relation).expect("main thread is waiting");
            })
        })
        .collect();

    for _ in 0..2 {
        rx.recv_timeout(Duration::from_secs(30))
            .expect("readers must progress while both writers are live");
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    for w in writers {
        assert!(w.join().expect("writer") > 0, "writers made progress too");
    }
    for r in readers {
        r.join().expect("reader");
    }

    let mut client = Client::connect(addr).expect("stats client");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.shards.len(), 2, "one stats row per shard");
    for (s, row) in stats.shards.iter().enumerate() {
        assert!(row.admitted > 0, "shard {s} saw no traffic");
        assert_eq!(row.admitted, row.answered, "shard {s} drained");
    }
    drop(client);
    handle.shutdown();
    vkg.index().check_invariants();
}

/// The `Metrics` opcode exports telemetry that reconciles with what the
/// client just did: per-query spans (with outcomes and refine steps),
/// the mirrored admission counters, and the merged facade registry.
#[test]
fn metrics_opcode_exports_reconciling_telemetry() {
    let vkg = build_vkg();
    let handle = start(&vkg, ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("client connects");

    let mut queries = 0u64;
    for i in 0..8u32 {
        client
            .top_k(EntityId(i), RelationId(0), Direction::Tails, 5)
            .expect("top-k is answered");
        queries += 1;
    }
    client
        .aggregate(
            EntityId(0),
            RelationId(0),
            Direction::Tails,
            AggregateKind::Count,
            None,
            0.05,
            None,
        )
        .expect("aggregate is answered");
    queries += 1;
    // A well-formed query for an unknown entity: answered with a typed
    // error, traced as an `Error`-outcome span.
    let err = client.top_k(EntityId(9_999_999), RelationId(0), Direction::Tails, 5);
    assert!(matches!(err, Err(ClientError::Server(_))));
    queries += 1;

    let m = client.metrics(64).expect("metrics is answered");
    let snap = &m.snapshot;

    // Facade-side counters: every executed query was recorded, and
    // exactly one returned a typed error.
    assert_eq!(snap.counter("core.queries"), Some(queries));
    assert_eq!(snap.counter("core.query_errors"), Some(1));
    let core_latency = snap.hist("core.query_latency_us").expect("facade latency");
    assert_eq!(core_latency.total, queries);

    // Server-side mirrors: all admitted work was answered (each call
    // above is synchronous), nothing was shed, the queue is idle.
    assert_eq!(snap.gauge("server.admitted"), Some(queries));
    assert_eq!(snap.gauge("server.answered"), Some(queries));
    assert_eq!(snap.gauge("server.shed"), Some(0));
    assert_eq!(snap.gauge("server.queue_depth"), Some(0));
    assert!(snap.gauge("server.shard0.admitted").is_some());
    let server_latency = snap.hist("server.latency_us").expect("server latency");
    assert_eq!(server_latency.total, queries);

    // Spans: one per admitted request, none dropped (ring holds 256),
    // ordered by id, with outcomes and refine steps that match the
    // traffic above.
    assert_eq!(snap.spans_recorded, queries);
    assert_eq!(snap.spans_dropped, 0);
    assert_eq!(snap.spans.len(), queries as usize);
    for w in snap.spans.windows(2) {
        assert!(w[0].id < w[1].id, "spans ordered by query id");
    }
    let errors = snap
        .spans
        .iter()
        .filter(|s| s.outcome == SpanOutcome::Error)
        .count();
    assert_eq!(errors, 1, "exactly one traced error");
    let topk_refines: u64 = snap
        .spans
        .iter()
        .filter(|s| s.outcome == SpanOutcome::Ok && s.op == 0x01)
        .map(|s| s.refine_steps)
        .sum();
    assert!(topk_refines > 0, "successful top-k spans carry S1 evals");
    assert_eq!(
        snap.counter("core.refine_steps"),
        Some(snap.spans.iter().map(|s| s.refine_steps).sum()),
        "facade refine counter equals the sum over all spans"
    );

    drop(client);
    let counters = handle.shutdown();
    assert_eq!(counters.admitted, counters.answered, "drain invariant");
}

/// With an injected mock clock the server still serves correctly, and
/// every span phase reads zero — timing is fully deterministic, which
/// is what lets tests assert on span contents at all.
#[test]
fn mock_clock_makes_span_timing_deterministic() {
    let vkg = build_vkg();
    let handle = start(
        &vkg,
        ServerConfig {
            clock: Clock::mock(),
            span_ring: 8,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(handle.addr()).expect("client connects");
    for i in 0..3u32 {
        client
            .top_k(EntityId(i), RelationId(0), Direction::Tails, 3)
            .expect("top-k under a mock clock");
    }
    let m = client.metrics(8).expect("metrics");
    assert_eq!(m.snapshot.spans.len(), 3);
    for s in &m.snapshot.spans {
        assert_eq!(s.total_ns(), 0, "mock time never advances: {s:?}");
        assert_eq!(s.outcome, SpanOutcome::Ok);
    }
    let latency = m.snapshot.hist("server.latency_us").expect("latency");
    assert_eq!(latency.total, 3);
    assert_eq!(latency.max_us, 0);
    drop(client);
    handle.shutdown();
}
