//! The no-index baseline: exact brute-force top-k over all entities.
//!
//! "One baseline approach is what one would do without our work —
//! answering the top-k entity queries without using an index by iterating
//! over all possible entities" (§VI-B). Besides serving as a baseline,
//! this is the ground-truth oracle the precision@K accuracy figures
//! compare against.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use vkg_embed::EmbeddingStore;
use vkg_kg::{EntityId, RelationId};

/// Exact brute-force query processing over an embedding store.
#[derive(Debug, Clone, Copy)]
pub struct LinearScan<'a> {
    store: &'a EmbeddingStore,
}

#[derive(Debug, PartialEq)]
struct Entry {
    distance: f64,
    id: u32,
}

impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.distance
            .total_cmp(&other.distance)
            .then(self.id.cmp(&other.id))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<'a> LinearScan<'a> {
    /// Wraps an embedding store.
    pub fn new(store: &'a EmbeddingStore) -> Self {
        Self { store }
    }

    /// Exact top-k nearest entities to an arbitrary S₁ point, excluding
    /// those for which `skip` returns true. Results ascend by distance.
    pub fn top_k_near(
        &self,
        q_s1: &[f64],
        k: usize,
        mut skip: impl FnMut(u32) -> bool,
    ) -> Vec<(u32, f64)> {
        let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k + 1);
        for id in 0..self.store.num_entities() as u32 {
            if skip(id) {
                continue;
            }
            let d = self.store.distance_to_entity(q_s1, EntityId(id));
            if heap.len() < k {
                heap.push(Entry { distance: d, id });
            } else if let Some(top) = heap.peek() {
                if d < top.distance {
                    heap.pop();
                    heap.push(Entry { distance: d, id });
                }
            }
        }
        let mut v: Vec<Entry> = heap.into_vec();
        v.sort();
        v.into_iter().map(|e| (e.id, e.distance)).collect()
    }

    /// Exact top-k tails for `(h, r, ·)` — query center `h + r`.
    pub fn top_k_tails(
        &self,
        h: EntityId,
        r: RelationId,
        k: usize,
        skip: impl FnMut(u32) -> bool,
    ) -> Vec<(u32, f64)> {
        let q = self.store.tail_query_point(h, r);
        self.top_k_near(&q, k, skip)
    }

    /// Exact top-k heads for `(·, r, t)` — query center `t − r`.
    pub fn top_k_heads(
        &self,
        t: EntityId,
        r: RelationId,
        k: usize,
        skip: impl FnMut(u32) -> bool,
    ) -> Vec<(u32, f64)> {
        let q = self.store.head_query_point(t, r);
        self.top_k_near(&q, k, skip)
    }

    /// All entities within S₁ distance `radius` of `q_s1`, ascending by
    /// distance (ground truth for the aggregate-query figures).
    pub fn within_radius(
        &self,
        q_s1: &[f64],
        radius: f64,
        mut skip: impl FnMut(u32) -> bool,
    ) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        for id in 0..self.store.num_entities() as u32 {
            if skip(id) {
                continue;
            }
            let d = self.store.distance_to_entity(q_s1, EntityId(id));
            if d <= radius {
                out.push((id, d));
            }
        }
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// Exact maximum-inner-product top-k over row-major `data` (`n × dim`) —
/// the ground truth H2-ALSH is measured against.
pub fn exact_mips_top_k(data: &[f64], dim: usize, q: &[f64], k: usize) -> Vec<(u32, f64)> {
    assert_eq!(data.len() % dim, 0, "matrix shape mismatch");
    assert_eq!(q.len(), dim, "query dimensionality mismatch");
    let mut scored: Vec<(u32, f64)> = data
        .chunks_exact(dim)
        .enumerate()
        .map(|(i, row)| {
            let ip: f64 = row.iter().zip(q).map(|(a, b)| a * b).sum();
            (i as u32, ip)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> EmbeddingStore {
        // 5 entities on a line, 1 relation translating by +1.
        EmbeddingStore::from_raw(
            2,
            vec![0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0],
            vec![1.0, 0.0],
        )
    }

    #[test]
    fn top_k_near_is_exact_and_sorted() {
        let s = store();
        let scan = LinearScan::new(&s);
        let r = scan.top_k_near(&[1.9, 0.0], 3, |_| false);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].0, 2);
        assert_eq!(r[1].0, 1);
        assert_eq!(r[2].0, 3);
        assert!(r[0].1 <= r[1].1 && r[1].1 <= r[2].1);
    }

    #[test]
    fn skip_filters() {
        let s = store();
        let scan = LinearScan::new(&s);
        let r = scan.top_k_near(&[1.9, 0.0], 2, |id| id == 2);
        assert_eq!(r[0].0, 1);
        assert_eq!(r[1].0, 3);
    }

    #[test]
    fn tails_use_translation() {
        let s = store();
        let scan = LinearScan::new(&s);
        // h = e1 (1,0), r = (+1, 0) → q = (2,0) → nearest is e2.
        let r = scan.top_k_tails(EntityId(1), RelationId(0), 1, |_| false);
        assert_eq!(r[0].0, 2);
        assert_eq!(r[0].1, 0.0);
    }

    #[test]
    fn heads_invert_translation() {
        let s = store();
        let scan = LinearScan::new(&s);
        // t = e3 (3,0), r = (+1,0) → q = (2,0) → nearest head is e2.
        let r = scan.top_k_heads(EntityId(3), RelationId(0), 1, |_| false);
        assert_eq!(r[0].0, 2);
    }

    #[test]
    fn within_radius_collects_ball() {
        let s = store();
        let scan = LinearScan::new(&s);
        let r = scan.within_radius(&[2.0, 0.0], 1.5, |_| false);
        let ids: Vec<u32> = r.iter().map(|x| x.0).collect();
        assert_eq!(ids, vec![2, 1, 3]);
    }

    #[test]
    fn k_larger_than_population() {
        let s = store();
        let scan = LinearScan::new(&s);
        let r = scan.top_k_near(&[0.0, 0.0], 50, |_| false);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn exact_mips() {
        let data = vec![1.0, 0.0, 0.0, 1.0, 0.7, 0.7];
        let r = exact_mips_top_k(&data, 2, &[1.0, 0.2], 2);
        assert_eq!(r[0].0, 0, "(1,0)·(1,0.2) = 1.0 wins");
        assert_eq!(r[1].0, 2, "(0.7,0.7)·(1,0.2) = 0.84 second");
    }
}
