//! Aggregate-query accuracy against ground truth — the methodology of
//! Figures 12–16: ground truth accesses *all* data points up to
//! probability threshold 0.01; accuracy is `1 − |v_ret − v_true|/v_true`;
//! accuracy must rise (and the Theorem 4 interval tighten) as the sample
//! size grows.

use vkg::prelude::*;

struct World {
    vkg: VirtualKnowledgeGraph,
    user: EntityId,
    likes: RelationId,
}

fn movie_world() -> World {
    let ds = movie_like(&MovieConfig::tiny());
    let (store, _) = TransE::new(TransEConfig {
        dim: 24,
        epochs: 10,
        ..TransEConfig::default()
    })
    .train(&ds.graph);
    let vkg = VirtualKnowledgeGraph::assemble(
        ds.graph.clone(),
        ds.attributes.clone(),
        store,
        VkgConfig::default(),
    );
    let user = ds.graph.entity_id("user_2").unwrap();
    let likes = ds.graph.relation_id("likes").unwrap();
    World { vkg, user, likes }
}

fn accuracy(returned: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        return if returned == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - (returned - truth).abs() / truth.abs()
}

#[test]
fn count_approaches_full_access() {
    let w = movie_world();
    // Ground truth: access everything (no sample cap) at p_τ = 0.01.
    let truth = w
        .vkg
        .aggregate(
            w.user,
            w.likes,
            Direction::Tails,
            &AggregateSpec::count(0.01),
        )
        .unwrap();
    assert!(truth.estimate >= 1.0);
    assert_eq!(truth.accessed, truth.ball_size, "no cap = full access");
    // A capped sample estimates the unaccessed probabilities from contour
    // elements (§V-B) — approximate, but in the right ballpark, and the
    // approximation error vanishes at full access.
    let sampled = w
        .vkg
        .aggregate(
            w.user,
            w.likes,
            Direction::Tails,
            &AggregateSpec::count(0.01).with_sample(3),
        )
        .unwrap();
    assert_eq!(sampled.accessed, 3.min(sampled.ball_size));
    let rel = (truth.estimate - sampled.estimate).abs() / truth.estimate;
    assert!(
        rel < 0.75,
        "sampled count {} vs truth {}",
        sampled.estimate,
        truth.estimate
    );
}

#[test]
fn avg_accuracy_improves_with_sample_size() {
    let w = movie_world();
    let spec_full = AggregateSpec::of(AggregateKind::Avg, "year", 0.01);
    let truth = w
        .vkg
        .aggregate(w.user, w.likes, Direction::Tails, &spec_full)
        .unwrap();
    assert!(truth.ball_size >= 4, "ball too small to sweep");

    let mut accuracies = Vec::new();
    for a in [1usize, truth.ball_size / 2, truth.ball_size] {
        let r = w
            .vkg
            .aggregate(
                w.user,
                w.likes,
                Direction::Tails,
                &spec_full.clone().with_sample(a.max(1)),
            )
            .unwrap();
        accuracies.push(accuracy(r.estimate, truth.estimate));
    }
    // Full access reproduces the truth exactly; accuracy is weakly
    // increasing along the sweep (the Figures 13–14 trade-off).
    assert!((accuracies[2] - 1.0).abs() < 1e-9);
    assert!(accuracies[2] >= accuracies[0] - 1e-9);
    // Even tiny samples stay in a sane range for year data.
    assert!(accuracies[0] > 0.9, "1-sample accuracy {}", accuracies[0]);
}

#[test]
fn sum_scales_to_truth() {
    let w = movie_world();
    let spec = AggregateSpec::of(AggregateKind::Sum, "year", 0.01);
    let truth = w
        .vkg
        .aggregate(w.user, w.likes, Direction::Tails, &spec)
        .unwrap();
    let half = w
        .vkg
        .aggregate(
            w.user,
            w.likes,
            Direction::Tails,
            &spec.clone().with_sample((truth.ball_size / 2).max(1)),
        )
        .unwrap();
    // The scaled partial sum lands in the full-access value's ballpark —
    // the unaccessed half of the ball carries element-approximated
    // probabilities (§V-B), so equality is not expected, but gross
    // misscaling (e.g. forgetting the Σ_b p / Σ_a p factor entirely,
    // which would halve the estimate's probability mass) is ruled out.
    assert!(
        accuracy(half.estimate, truth.estimate) > 0.6,
        "half-sample sum {} vs truth {}",
        half.estimate,
        truth.estimate
    );
    // And full access is exact by construction.
    let full = w
        .vkg
        .aggregate(w.user, w.likes, Direction::Tails, &spec)
        .unwrap();
    assert!(accuracy(full.estimate, truth.estimate) > 0.999);
}

#[test]
fn max_and_min_bracket_the_truth() {
    let w = movie_world();
    let max_spec = AggregateSpec::of(AggregateKind::Max, "year", 0.01);
    let min_spec = AggregateSpec::of(AggregateKind::Min, "year", 0.01);
    let max = w
        .vkg
        .aggregate(w.user, w.likes, Direction::Tails, &max_spec)
        .unwrap();
    let min = w
        .vkg
        .aggregate(w.user, w.likes, Direction::Tails, &min_spec)
        .unwrap();
    assert!(max.estimate >= min.estimate);
    // Yearly attributes bound the estimates loosely (the Eq. 4 correction
    // may overshoot the sample max, which is its purpose).
    assert!(max.estimate >= 1900.0 && max.estimate <= 2200.0);
    assert!(min.estimate >= 1700.0 && min.estimate <= 2100.0);
}

#[test]
fn deviation_bound_tightens_with_access() {
    let w = movie_world();
    let spec = AggregateSpec::of(AggregateKind::Sum, "year", 0.01);
    let truth = w
        .vkg
        .aggregate(w.user, w.likes, Direction::Tails, &spec)
        .unwrap();
    if truth.ball_size < 4 {
        return; // nothing to sweep
    }
    let small = w
        .vkg
        .aggregate(
            w.user,
            w.likes,
            Direction::Tails,
            &spec.clone().with_sample(1),
        )
        .unwrap();
    let large = w
        .vkg
        .aggregate(
            w.user,
            w.likes,
            Direction::Tails,
            &spec.clone().with_sample(truth.ball_size),
        )
        .unwrap();
    // More access → less unaccessed mass in the Theorem 4 denominator.
    // v_m is *estimated from the sample* (the paper's no-domain-knowledge
    // variant), so the improvement is approximate: a one-point sample may
    // slightly under-estimate v_m. Require "no meaningful loosening" plus
    // the structural fact that full access leaves no unaccessed mass.
    let d_small = small.bound.delta_for_confidence(0.9);
    let d_large = large.bound.delta_for_confidence(0.9);
    assert!(
        d_large <= d_small * 1.05 + 1e-9,
        "90% interval loosened: a=1 → {d_small}, full → {d_large}"
    );
    assert_eq!(large.accessed, large.ball_size);
}

#[test]
fn theorem4_bound_actually_holds_empirically() {
    // Over many users, the realized deviation between the sampled and
    // full-access SUM must exceed the 95%-confidence δ at most ~5% of the
    // time (plus slack for the small query count).
    let ds = movie_like(&MovieConfig::tiny());
    let (store, _) = TransE::new(TransEConfig {
        dim: 24,
        epochs: 10,
        ..TransEConfig::default()
    })
    .train(&ds.graph);
    let vkg = VirtualKnowledgeGraph::assemble(
        ds.graph.clone(),
        ds.attributes.clone(),
        store,
        VkgConfig::default(),
    );
    let likes = ds.graph.relation_id("likes").unwrap();
    let spec = AggregateSpec::of(AggregateKind::Sum, "year", 0.01);
    let mut violations = 0usize;
    let mut total = 0usize;
    for u in 0..30 {
        let user = ds.graph.entity_id(&format!("user_{u}")).unwrap();
        let truth = vkg.aggregate(user, likes, Direction::Tails, &spec).unwrap();
        if truth.ball_size < 4 || truth.estimate == 0.0 {
            continue;
        }
        let sampled = vkg
            .aggregate(
                user,
                likes,
                Direction::Tails,
                &spec.clone().with_sample(truth.ball_size / 2),
            )
            .unwrap();
        let delta95 = sampled.bound.delta_for_confidence(0.95);
        let realized = (sampled.estimate - truth.estimate).abs() / truth.estimate.abs();
        total += 1;
        if realized > delta95 {
            violations += 1;
        }
    }
    assert!(total >= 10, "too few usable queries ({total})");
    assert!(
        (violations as f64) <= 0.25 * total as f64,
        "{violations}/{total} deviations exceeded the 95% bound"
    );
}
