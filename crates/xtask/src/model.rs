//! The declared concurrency model the semantic rules check against:
//! lock classes with their acquisition DAG, and the request-path audit
//! scope. Loaded from `crates/xtask/lockorder.toml` (embedded at build
//! time, so the binary needs no working directory).
//!
//! The file is parsed with a deliberately tiny TOML-subset reader
//! (tables, `[[class]]` arrays-of-tables, string/bool/string-array
//! values) — the workspace takes no external dependencies.

/// One declared lock class.
#[derive(Debug, Clone, Default)]
pub struct LockClass {
    /// Display name, matching `vkg_sync` lock names (`vkg.shard`, …).
    pub name: String,
    /// Receiver field names whose `.lock()/.read()/.write()` acquire
    /// this class (`self.crack_log.lock()` → field `crack_log`).
    pub fields: Vec<String>,
    /// Classes that may be acquired *while holding* this one.
    pub before: Vec<String>,
    /// The class may nest with itself (the ascending `lock_all` sweep).
    pub self_nest: bool,
}

/// Parsed `lockorder.toml`.
#[derive(Debug, Clone, Default)]
pub struct LockConfig {
    pub classes: Vec<LockClass>,
    /// Request-path entry-point function names.
    pub entries: Vec<String>,
    /// Files whose functions can be entry points.
    pub entry_files: Vec<String>,
    /// Path prefixes (or exact paths) inside the request-path audit
    /// scope; calls leaving the scope are treated as opaque.
    pub scope: Vec<String>,
}

impl LockConfig {
    /// Class index acquired through `field`, if declared.
    pub fn class_of_field(&self, field: &str) -> Option<usize> {
        self.classes
            .iter()
            .position(|c| c.fields.iter().any(|f| f == field))
    }

    pub fn class_index(&self, name: &str) -> Option<usize> {
        self.classes.iter().position(|c| c.name == name)
    }

    /// Whether acquiring `to` while holding `from` follows the declared
    /// DAG (transitively: `a before b`, `b before c` ⇒ `a before c`).
    pub fn allows(&self, from: usize, to: usize) -> bool {
        if from == to {
            return self.classes[from].self_nest;
        }
        // DFS over `before` edges; class counts are tiny.
        let mut stack = vec![from];
        let mut seen = vec![false; self.classes.len()];
        while let Some(c) = stack.pop() {
            if seen[c] {
                continue;
            }
            seen[c] = true;
            for b in &self.classes[c].before {
                if let Some(bi) = self.class_index(b) {
                    if bi == to {
                        return true;
                    }
                    stack.push(bi);
                }
            }
        }
        false
    }

    /// Whether `path` is inside the request-path audit scope.
    pub fn in_scope(&self, path: &str) -> bool {
        self.scope
            .iter()
            .any(|s| path == s || (s.ends_with('/') && path.starts_with(s.as_str())))
    }

    /// Whether `(path, fn_name)` is a request-path entry point.
    pub fn is_entry(&self, path: &str, fn_name: &str) -> bool {
        self.entry_files.iter().any(|f| f == path) && self.entries.iter().any(|e| e == fn_name)
    }
}

/// Parses the TOML subset used by `lockorder.toml`. Errors carry the
/// offending line for diagnostics.
pub fn parse_config(text: &str) -> Result<LockConfig, String> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Class,
        RequestPath,
    }
    let mut cfg = LockConfig::default();
    let mut section = Section::None;
    for (n, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[class]]" {
            cfg.classes.push(LockClass::default());
            section = Section::Class;
            continue;
        }
        if line == "[request_path]" {
            section = Section::RequestPath;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "lockorder.toml:{}: unknown section `{line}`",
                n + 1
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lockorder.toml:{}: expected `key = value`", n + 1));
        };
        let key = key.trim();
        let value = value.trim();
        let err = |what: &str| format!("lockorder.toml:{}: {what}", n + 1);
        match section {
            Section::Class => {
                let class = cfg
                    .classes
                    .last_mut()
                    .ok_or_else(|| err("no open [[class]]"))?;
                match key {
                    "name" => class.name = parse_str(value).ok_or_else(|| err("bad string"))?,
                    "fields" => {
                        class.fields = parse_array(value).ok_or_else(|| err("bad array"))?
                    }
                    "before" => {
                        class.before = parse_array(value).ok_or_else(|| err("bad array"))?
                    }
                    "self_nest" => {
                        class.self_nest = match value {
                            "true" => true,
                            "false" => false,
                            _ => return Err(err("self_nest must be true or false")),
                        }
                    }
                    _ => return Err(err("unknown class key")),
                }
            }
            Section::RequestPath => match key {
                "entries" => cfg.entries = parse_array(value).ok_or_else(|| err("bad array"))?,
                "entry_files" => {
                    cfg.entry_files = parse_array(value).ok_or_else(|| err("bad array"))?
                }
                "scope" => cfg.scope = parse_array(value).ok_or_else(|| err("bad array"))?,
                _ => return Err(err("unknown request_path key")),
            },
            Section::None => return Err(err("key outside any section")),
        }
    }
    for c in &cfg.classes {
        if c.name.is_empty() {
            return Err("lockorder.toml: a [[class]] is missing `name`".to_string());
        }
        for b in &c.before {
            if cfg.class_index(b).is_none() {
                return Err(format!(
                    "lockorder.toml: class `{}` orders before undeclared `{b}`",
                    c.name
                ));
            }
        }
    }
    Ok(cfg)
}

/// The workspace's declared model, embedded at compile time.
pub fn default_config() -> LockConfig {
    static TEXT: &str = include_str!("../lockorder.toml");
    parse_config(TEXT).unwrap_or_else(|e| {
        // A broken declaration must fail loudly, not lint vacuously.
        eprintln!("invalid crates/xtask/lockorder.toml: {e}");
        std::process::exit(2);
    })
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_str(v: &str) -> Option<String> {
    let v = v.strip_prefix('"')?.strip_suffix('"')?;
    Some(v.to_string())
}

fn parse_array(v: &str) -> Option<Vec<String>> {
    let v = v.strip_prefix('[')?.strip_suffix(']')?.trim();
    if v.is_empty() {
        return Some(Vec::new());
    }
    v.split(',')
        .map(|item| {
            let item = item.trim();
            if item.is_empty() {
                // Trailing comma.
                Some(None)
            } else {
                parse_str(item).map(Some)
            }
        })
        .collect::<Option<Vec<_>>>()
        .map(|items| items.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# a comment
[[class]]
name = "vkg.shard"            # inline comment
fields = ["state"]
self_nest = true
before = ["vkg.published", "vkg.cracklog"]

[[class]]
name = "vkg.published"
fields = ["published"]

[[class]]
name = "vkg.cracklog"
fields = ["crack_log"]

[request_path]
entries = ["worker_loop"]
entry_files = ["crates/server/src/server.rs"]
scope = ["crates/server/src/", "crates/core/src/vkg.rs"]
"#;

    #[test]
    fn parses_classes_and_order() {
        let cfg = parse_config(SAMPLE).expect("parses");
        assert_eq!(cfg.classes.len(), 3);
        let shard = cfg.class_index("vkg.shard").unwrap();
        let publ = cfg.class_index("vkg.published").unwrap();
        let log = cfg.class_index("vkg.cracklog").unwrap();
        assert!(cfg.allows(shard, publ));
        assert!(cfg.allows(shard, log));
        assert!(!cfg.allows(log, shard), "inversion must be rejected");
        assert!(!cfg.allows(publ, log), "unordered pair is rejected");
        assert!(cfg.allows(shard, shard), "self_nest = true");
        assert!(!cfg.allows(log, log), "self_nest defaults to false");
        assert_eq!(cfg.class_of_field("crack_log"), Some(log));
        assert_eq!(cfg.class_of_field("nope"), None);
    }

    #[test]
    fn scope_and_entries() {
        let cfg = parse_config(SAMPLE).expect("parses");
        assert!(cfg.in_scope("crates/server/src/server.rs"));
        assert!(cfg.in_scope("crates/core/src/vkg.rs"));
        assert!(!cfg.in_scope("crates/core/src/index/topk.rs"));
        assert!(cfg.is_entry("crates/server/src/server.rs", "worker_loop"));
        assert!(!cfg.is_entry("crates/server/src/queue.rs", "worker_loop"));
    }

    #[test]
    fn transitive_order() {
        let cfg = parse_config(
            "[[class]]\nname = \"a\"\nfields = [\"fa\"]\nbefore = [\"b\"]\n\
             [[class]]\nname = \"b\"\nfields = [\"fb\"]\nbefore = [\"c\"]\n\
             [[class]]\nname = \"c\"\nfields = [\"fc\"]\n",
        )
        .expect("parses");
        let (a, c) = (cfg.class_index("a").unwrap(), cfg.class_index("c").unwrap());
        assert!(cfg.allows(a, c), "a < b < c implies a < c");
        assert!(!cfg.allows(c, a));
    }

    #[test]
    fn bad_configs_error() {
        assert!(
            parse_config("[[class]]\nfields = [\"x\"]\n").is_err(),
            "missing name"
        );
        assert!(
            parse_config("[[class]]\nname = \"a\"\nbefore = [\"ghost\"]\n").is_err(),
            "undeclared order target"
        );
        assert!(parse_config("[wat]\n").is_err());
        assert!(
            parse_config("name = \"a\"\n").is_err(),
            "key outside section"
        );
    }

    #[test]
    fn embedded_config_is_valid() {
        let cfg = default_config();
        assert!(cfg.class_index("vkg.shard").is_some());
        assert!(cfg.class_index("vkg.published").is_some());
        assert!(cfg.class_index("vkg.cracklog").is_some());
        assert!(!cfg.entries.is_empty());
        assert!(!cfg.scope.is_empty());
    }
}
