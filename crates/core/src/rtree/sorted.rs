//! The multi-sort-order partition representation.
//!
//! BULKLOADCHUNK keeps the data in `S` *sort orders* — here one per S₂
//! axis (points are degenerate rectangles, so the 2α rectangle coordinates
//! collapse to α). A binary split picks a prefix of one order; all other
//! orders are then stable-partitioned by membership so every order stays
//! sorted (the paper's SPLITONKEY, lines 6–7 of BESTBINARYSPLIT).

use std::collections::HashSet;

use vkg_sync::pool::Pool;
use vkg_sync::{AtomicU64, Mutex, Ordering};

use crate::geometry::{Mbr, PointSet};

/// Below this many points the pooled entry points run the serial code
/// outright — fan-out bookkeeping would dominate the saved work.
const POOLED_MIN: usize = 4096;

/// Sorts one axis order with the canonical comparator (coordinate, then
/// id). Shared by the serial and pooled builders so both produce the
/// identical permutation.
fn sort_axis(points: &PointSet, axis: usize, order: &mut [u32]) {
    order.sort_unstable_by(|&a, &b| {
        points
            .coord(a, axis)
            .partial_cmp(&points.coord(b, axis))
            .expect("NaN coordinate in point set")
            .then(a.cmp(&b))
    });
}

/// A partition of point ids maintained in one sorted list per axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortOrders {
    orders: Vec<Vec<u32>>,
}

impl SortOrders {
    /// Builds the `S = α` sort orders of `ids` over `points`.
    ///
    /// Ties broken by id, so construction is deterministic.
    pub fn build(points: &PointSet, mut ids: Vec<u32>) -> Self {
        let dim = points.dim();
        let mut orders = Vec::with_capacity(dim);
        for axis in 0..dim {
            let mut order = if axis + 1 == dim {
                std::mem::take(&mut ids)
            } else {
                ids.clone()
            };
            sort_axis(points, axis, &mut order);
            orders.push(order);
        }
        Self { orders }
    }

    /// [`SortOrders::build`] with the per-axis sorts fanned out over a
    /// pool. Every axis runs the identical comparator, so the result
    /// equals the serial build at any width; a serial pool or a small
    /// input takes the serial code path outright.
    pub fn build_pooled(points: &PointSet, mut ids: Vec<u32>, pool: &Pool) -> Self {
        let dim = points.dim();
        if pool.is_serial() || ids.len() < POOLED_MIN || dim < 2 {
            return Self::build(points, ids);
        }
        let slots: Vec<Mutex<Vec<u32>>> = (0..dim)
            .map(|axis| {
                Mutex::new(if axis + 1 == dim {
                    std::mem::take(&mut ids)
                } else {
                    ids.clone()
                })
            })
            .collect();
        pool.run(dim, |axis| {
            let mut order = slots[axis].lock();
            sort_axis(points, axis, &mut order);
        });
        Self {
            orders: slots.into_iter().map(Mutex::into_inner).collect(),
        }
    }

    /// Number of points in the partition.
    #[inline]
    pub fn len(&self) -> usize {
        self.orders.first().map_or(0, Vec::len)
    }

    /// Whether the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sort orders `S`.
    pub fn num_orders(&self) -> usize {
        self.orders.len()
    }

    /// The ids in sort order `axis`.
    #[inline]
    pub fn ids(&self, axis: usize) -> &[u32] {
        &self.orders[axis]
    }

    /// Consumes the partition, returning the ids (first order).
    pub fn into_ids(mut self) -> Vec<u32> {
        self.orders.swap_remove(0)
    }

    /// The MBR of the partition: per-axis extremes read in O(α) from the
    /// sorted ends.
    pub fn mbr(&self, points: &PointSet) -> Mbr {
        let mut mbr = Mbr::empty(self.num_orders());
        if self.is_empty() {
            return mbr;
        }
        // The first/last entries of each order give that axis's extremes;
        // include both endpoint *points* so every axis of the MBR is set.
        for order in &self.orders {
            mbr.include_point(points.point(order[0]));
            mbr.include_point(points.point(*order.last().expect("non-empty order")));
        }
        mbr
    }

    /// Number of points inside `region`.
    pub fn count_in_region(&self, points: &PointSet, region: &Mbr) -> usize {
        self.orders[0]
            .iter()
            .filter(|&&id| points.in_region(id, region))
            .count()
    }

    /// [`SortOrders::count_in_region`] chunked over a pool. The count
    /// is an integer sum of per-chunk partial counts, so the result is
    /// exact at every width.
    pub fn count_in_region_pooled(&self, points: &PointSet, region: &Mbr, pool: &Pool) -> usize {
        let len = self.len();
        if pool.is_serial() || len < POOLED_MIN {
            return self.count_in_region(points, region);
        }
        let total = AtomicU64::new(0);
        pool.run_chunked(len, 1024, |start, end| {
            let c = self.orders[0][start..end]
                .iter()
                .filter(|&&id| points.in_region(id, region))
                .count() as u64;
            // relaxed: independent partial counts; the pool's scoped join publishes the sum.
            total.fetch_add(c, Ordering::Relaxed);
        });
        // relaxed: single-threaded read after the pool joined every worker.
        total.load(Ordering::Relaxed) as usize
    }

    /// Splits off the first `count` ids of order `axis` (the paper's
    /// SPLITONKEY): returns `(low, high)` partitions with **all** orders
    /// maintained sorted via stable partition by membership.
    ///
    /// # Panics
    /// Panics if `count` is 0 or ≥ `len` (a split must be proper).
    pub fn split_by_prefix(&self, axis: usize, count: usize) -> (SortOrders, SortOrders) {
        let len = self.len();
        assert!(count > 0 && count < len, "improper split {count}/{len}");
        let low_set: HashSet<u32> = self.orders[axis][..count].iter().copied().collect();

        let mut low = Vec::with_capacity(self.num_orders());
        let mut high = Vec::with_capacity(self.num_orders());
        for order in &self.orders {
            let mut l = Vec::with_capacity(count);
            let mut h = Vec::with_capacity(len - count);
            for &id in order {
                if low_set.contains(&id) {
                    l.push(id);
                } else {
                    h.push(id);
                }
            }
            low.push(l);
            high.push(h);
        }
        (SortOrders { orders: low }, SortOrders { orders: high })
    }

    /// [`SortOrders::split_by_prefix`] with the per-order stable
    /// partitions fanned out over a pool. Membership comes from the
    /// same prefix set, so `(low, high)` equal the serial split at any
    /// width.
    ///
    /// # Panics
    /// Panics if `count` is 0 or ≥ `len` (a split must be proper).
    pub fn split_by_prefix_pooled(
        &self,
        axis: usize,
        count: usize,
        pool: &Pool,
    ) -> (SortOrders, SortOrders) {
        let len = self.len();
        if pool.is_serial() || len < POOLED_MIN || self.num_orders() < 2 {
            return self.split_by_prefix(axis, count);
        }
        assert!(count > 0 && count < len, "improper split {count}/{len}");
        let low_set: HashSet<u32> = self.orders[axis][..count].iter().copied().collect();
        let slots: Vec<Mutex<(Vec<u32>, Vec<u32>)>> = self
            .orders
            .iter()
            .map(|_| Mutex::new((Vec::new(), Vec::new())))
            .collect();
        pool.run(self.num_orders(), |o| {
            let mut l = Vec::with_capacity(count);
            let mut h = Vec::with_capacity(len - count);
            for &id in &self.orders[o] {
                if low_set.contains(&id) {
                    l.push(id);
                } else {
                    h.push(id);
                }
            }
            *slots[o].lock() = (l, h);
        });
        let mut low = Vec::with_capacity(self.num_orders());
        let mut high = Vec::with_capacity(self.num_orders());
        for slot in slots {
            let (l, h) = slot.into_inner();
            low.push(l);
            high.push(h);
        }
        (SortOrders { orders: low }, SortOrders { orders: high })
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.orders
            .iter()
            .map(|o| o.capacity() * std::mem::size_of::<u32>())
            .sum()
    }

    /// Inserts a point id into every order at its sorted position
    /// (dynamic updates, paper §VIII). O(S·n) worst case per insert.
    pub fn insert(&mut self, points: &PointSet, id: u32) {
        for (axis, order) in self.orders.iter_mut().enumerate() {
            let key = points.coord(id, axis);
            let pos = order.partition_point(|&other| {
                let oc = points.coord(other, axis);
                oc < key || (oc == key && other < id)
            });
            order.insert(pos, id);
        }
    }

    /// Removes a point id from every order; returns whether it was
    /// present.
    pub fn remove(&mut self, id: u32) -> bool {
        let mut found = false;
        for order in &mut self.orders {
            if let Some(pos) = order.iter().position(|&x| x == id) {
                order.remove(pos);
                found = true;
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 6 points in 2-D laid out so axis orders differ.
    fn fixture() -> (PointSet, SortOrders) {
        let ps = PointSet::from_rows(
            2,
            vec![
                0.0, 5.0, // id 0
                1.0, 4.0, // id 1
                2.0, 3.0, // id 2
                3.0, 2.0, // id 3
                4.0, 1.0, // id 4
                5.0, 0.0, // id 5
            ],
        );
        let ids = ps.all_ids();
        let so = SortOrders::build(&ps, ids);
        (ps, so)
    }

    #[test]
    fn orders_are_sorted_per_axis() {
        let (ps, so) = fixture();
        assert_eq!(so.num_orders(), 2);
        assert_eq!(so.ids(0), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(so.ids(1), &[5, 4, 3, 2, 1, 0]);
        assert_eq!(so.len(), 6);
        let _ = ps;
    }

    #[test]
    fn tie_break_by_id() {
        let ps = PointSet::from_rows(1, vec![7.0, 7.0, 3.0]);
        let so = SortOrders::build(&ps, vec![0, 1, 2]);
        assert_eq!(so.ids(0), &[2, 0, 1]);
    }

    #[test]
    fn mbr_covers_all_points() {
        let (ps, so) = fixture();
        let mbr = so.mbr(&ps);
        assert_eq!(mbr.min(0), 0.0);
        assert_eq!(mbr.max(0), 5.0);
        assert_eq!(mbr.min(1), 0.0);
        assert_eq!(mbr.max(1), 5.0);
    }

    #[test]
    fn split_preserves_sortedness_and_partitioning() {
        let (_ps, so) = fixture();
        let (low, high) = so.split_by_prefix(0, 2);
        assert_eq!(low.ids(0), &[0, 1]);
        assert_eq!(high.ids(0), &[2, 3, 4, 5]);
        // Axis-1 orders stay sorted (descending-x points ascend in y).
        assert_eq!(low.ids(1), &[1, 0]);
        assert_eq!(high.ids(1), &[5, 4, 3, 2]);
        assert_eq!(low.len() + high.len(), 6);
    }

    #[test]
    fn split_on_second_axis() {
        let (_ps, so) = fixture();
        let (low, high) = so.split_by_prefix(1, 3);
        // Lowest three y values are points 5, 4, 3.
        assert_eq!(low.ids(1), &[5, 4, 3]);
        assert_eq!(low.ids(0), &[3, 4, 5]);
        assert_eq!(high.ids(0), &[0, 1, 2]);
    }

    #[test]
    fn count_in_region() {
        let (ps, so) = fixture();
        let region = Mbr::of_ball(&[2.5, 2.5], 1.0);
        // Points (2,3) and (3,2) fall inside.
        assert_eq!(so.count_in_region(&ps, &region), 2);
        let everywhere = Mbr::of_ball(&[2.5, 2.5], 10.0);
        assert_eq!(so.count_in_region(&ps, &everywhere), 6);
    }

    #[test]
    fn into_ids_returns_one_copy() {
        let (_ps, so) = fixture();
        let ids = so.into_ids();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    #[should_panic(expected = "improper split")]
    fn degenerate_split_rejected() {
        let (_ps, so) = fixture();
        let _ = so.split_by_prefix(0, 6);
    }

    #[test]
    fn empty_partition() {
        let ps = PointSet::from_rows(2, vec![]);
        let so = SortOrders::build(&ps, vec![]);
        assert!(so.is_empty());
        assert!(so.mbr(&ps).is_empty());
    }

    /// Enough points to clear `POOLED_MIN` so wide pools take the
    /// parallel paths for real.
    fn large_fixture() -> PointSet {
        let n = POOLED_MIN + 500;
        let coords: Vec<f64> = (0..n * 2)
            .map(|i| ((i as f64) * 0.618).sin() * 50.0)
            .collect();
        PointSet::from_rows(2, coords)
    }

    #[test]
    fn pooled_build_matches_serial_at_any_width() {
        let ps = large_fixture();
        let serial = SortOrders::build(&ps, ps.all_ids());
        for width in [1, 2, 4] {
            let pooled = SortOrders::build_pooled(&ps, ps.all_ids(), &Pool::new(width));
            assert_eq!(pooled, serial, "width {width} diverged");
        }
    }

    #[test]
    fn pooled_split_matches_serial() {
        let ps = large_fixture();
        let so = SortOrders::build(&ps, ps.all_ids());
        let cut = so.len() / 3;
        let (sl, sh) = so.split_by_prefix(1, cut);
        let (pl, ph) = so.split_by_prefix_pooled(1, cut, &Pool::new(4));
        assert_eq!(pl, sl);
        assert_eq!(ph, sh);
    }

    #[test]
    fn pooled_count_matches_serial() {
        let ps = large_fixture();
        let so = SortOrders::build(&ps, ps.all_ids());
        let region = Mbr::of_ball(&[0.0, 0.0], 30.0);
        let serial = so.count_in_region(&ps, &region);
        assert!(serial > 0);
        assert_eq!(
            so.count_in_region_pooled(&ps, &region, &Pool::new(4)),
            serial
        );
        assert_eq!(
            so.count_in_region_pooled(&ps, &region, &Pool::serial()),
            serial
        );
    }
}
