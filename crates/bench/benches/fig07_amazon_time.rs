//! Criterion counterpart of Figure 7: amazon-like dataset, varying k
//! (2 vs 10) for our cracking index and for H2-ALSH.
//!
//! The paper's finding: changing k barely affects the tree index (the
//! extra results sit in the same node) but does affect H2-ALSH, and
//! H2-ALSH degrades much faster as the dataset grows.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vkg::prelude::*;
use vkg_bench::setup::{self, Scale};
use vkg_bench::workload;

fn bench_fig7(c: &mut Criterion) {
    let p = setup::amazon(Scale::Smoke, 24);
    let queries = workload::generate(&p.dataset.graph, 256, 0xBE07);

    let mut group = c.benchmark_group("fig07_amazon_topk");

    for k in [2usize, 10] {
        let snap = p.snapshot(vkg_bench::setup::bench_config());
        let mut engine = IndexState::cracking(&snap);
        for q in queries.iter().take(20) {
            let _ = workload::run(&mut engine, &snap, q, k);
        }
        let qs = queries.clone();
        group.bench_function(&format!("cracking_k{k}"), move |b| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                black_box(workload::run(&mut engine, &snap, q, k))
            })
        });
    }

    // H2-ALSH over the product vectors, single "likes" relation.
    let d = p.embeddings.dim();
    let products: Vec<EntityId> = (0..p.dataset.graph.num_entities() as u32)
        .map(EntityId)
        .filter(|&e| {
            p.dataset
                .graph
                .entity_name(e)
                .is_some_and(|n| n.starts_with("product_"))
        })
        .collect();
    let mut data = Vec::with_capacity(products.len() * d);
    for &m in &products {
        data.extend_from_slice(p.embeddings.entity(m));
    }
    let idx = H2Alsh::build(data, d, H2AlshConfig::default());
    let users: Vec<EntityId> = (0..p.dataset.graph.num_entities() as u32)
        .map(EntityId)
        .filter(|&e| {
            p.dataset
                .graph
                .entity_name(e)
                .is_some_and(|n| n.starts_with("user_"))
        })
        .collect();
    for k in [2usize, 10] {
        group.bench_function(&format!("h2alsh_k{k}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let u = users[i % users.len()];
                i += 1;
                black_box(idx.top_k_mips(p.embeddings.entity(u), k, |_| false))
            })
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig7
}
criterion_main!(benches);
