//! Point-in-time, transport-agnostic metric snapshots.
//!
//! A [`MetricsSnapshot`] is what every export surface carries: the wire
//! `Metrics` opcode encodes it, the [`crate::expo`] text format renders
//! and parses it, and `serve_load` cross-checks it against client-side
//! measurements. It is plain data — no atomics, no locks — so it can be
//! compared, serialized, and shipped freely.

use crate::hist::Histogram;
use crate::span::Span;

/// A histogram reduced to its sparse transportable form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Total recorded samples.
    pub total: u64,
    /// Exact maximum sample in microseconds.
    pub max_us: u64,
    /// Non-empty `(bucket index, count)` pairs in index order.
    pub buckets: Vec<(u32, u64)>,
}

impl HistSnapshot {
    /// Snapshot of a live histogram.
    pub fn from_histogram(h: &Histogram) -> Self {
        HistSnapshot {
            total: h.len(),
            max_us: h.max_us(),
            buckets: h.sparse_buckets().collect(),
        }
    }

    /// Rebuilds a queryable histogram (bucket counts are authoritative;
    /// see [`Histogram::from_sparse`]).
    pub fn to_histogram(&self) -> Histogram {
        Histogram::from_sparse(&self.buckets, self.max_us)
    }

    /// Quantile in microseconds, via the rebuilt histogram.
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.to_histogram()
            .quantile(q)
            .as_micros()
            .min(u64::MAX as u128) as u64
    }
}

/// A full dump of one registry plus the owner's span ring.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, histogram)` for every histogram, sorted by name.
    pub hists: Vec<(String, HistSnapshot)>,
    /// The most recent spans, oldest first.
    pub spans: Vec<Span>,
    /// Total spans ever recorded by the ring.
    pub spans_recorded: u64,
    /// Spans dropped by the ring (claim failures + overwrites).
    pub spans_dropped: u64,
}

impl MetricsSnapshot {
    /// Value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram `name`, if present.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn hist_snapshot_roundtrips_through_histogram() {
        let mut h = Histogram::new();
        for us in [3, 3, 900, 12_000] {
            h.record(Duration::from_micros(us));
        }
        let snap = HistSnapshot::from_histogram(&h);
        assert_eq!(snap.total, 4);
        assert_eq!(snap.to_histogram(), h);
        assert!(snap.quantile_us(1.0) <= snap.max_us);
    }

    #[test]
    fn lookup_helpers_find_by_name() {
        let snap = MetricsSnapshot {
            counters: vec![("a".into(), 1), ("b".into(), 2)],
            gauges: vec![("g".into(), 3)],
            hists: vec![("h".into(), HistSnapshot::default())],
            ..MetricsSnapshot::default()
        };
        assert_eq!(snap.counter("b"), Some(2));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("g"), Some(3));
        assert!(snap.hist("h").is_some());
    }
}
