//! The crack/split driver: query-directed partial builds over contour
//! elements (§IV-C).
//!
//! [`CrackingIndex::crack`] dispatches on the configured strategy —
//! greedy INCREMENTALINDEXBUILD runs the build core directly over each
//! overlapping unsplit element; TOP-KSPLITSINDEXBUILD (Algorithm 2)
//! lives in [`super::topk`] and drives the same per-element primitives
//! exposed here (`CrackingIndex::crack_element` /
//! `CrackingIndex::dry_run_element`, crate-private).

use crate::config::SplitStrategy;
use crate::geometry::Mbr;

use super::build::{build_element, RunCost};
use super::chooser::{GreedyChooser, SplitChooser};
use super::{topk, CrackingIndex, NodeId, NodeKind};

impl CrackingIndex {
    /// Cracks the index for query region `q`: the online incremental
    /// partial build of §IV-C (strategy-dependent: greedy or Algorithm 2).
    pub fn crack(&mut self, q: &Mbr) {
        if let Some(journal) = &mut self.journal {
            journal.push(*q);
        }
        self.crack_unjournaled(q);
    }

    /// The crack proper, shared by [`CrackingIndex::crack`] and the
    /// sibling-replay path ([`CrackingIndex::replay_crack`]).
    pub(crate) fn crack_unjournaled(&mut self, q: &Mbr) {
        match self.strategy {
            SplitStrategy::Greedy => self.crack_greedy(q),
            SplitStrategy::TopK { choices } => topk::crack_topk(self, q, choices.max(1)),
        }
    }

    fn crack_greedy(&mut self, q: &Mbr) {
        let elements = self.unsplit_elements_overlapping(q);
        for id in elements {
            self.crack_element(id, q, &mut GreedyChooser);
        }
    }

    /// Unsplit contour elements whose MBR overlaps `q`, in DFS order.
    /// This is the traversal order Algorithm 2's lines 6–8 walk.
    pub(crate) fn unsplit_elements_overlapping(&self, q: &Mbr) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if !node.mbr.intersects(q) {
                continue;
            }
            match &node.kind {
                NodeKind::Internal(children) => stack.extend(children.iter().rev().copied()),
                NodeKind::Unsplit(_) => out.push(id),
                NodeKind::Leaf(_) => {}
            }
        }
        out
    }

    /// Runs the build core over one unsplit element and installs the
    /// result. Returns the run cost (no-op zero cost if the element is
    /// not unsplit).
    pub(crate) fn crack_element(
        &mut self,
        id: NodeId,
        q: &Mbr,
        chooser: &mut dyn SplitChooser,
    ) -> RunCost {
        let mut cost = RunCost::default();
        let kind = &mut self.nodes[id as usize].kind;
        let orders = match kind {
            NodeKind::Unsplit(_) => match std::mem::replace(kind, NodeKind::Internal(Vec::new())) {
                NodeKind::Unsplit(orders) => orders,
                // lint: allow(no-unwrap, replace returns the value matched Unsplit on the previous line)
                _ => unreachable!("just matched Unsplit"),
            },
            _ => return cost,
        };
        let built = build_element(
            &self.points,
            &self.params,
            orders,
            Some(q),
            chooser,
            &mut cost,
            &self.pool,
        );
        self.stats.splits_performed += cost.splits;
        self.install(id, built);
        cost
    }

    /// Dry-runs the build core over a *clone* of one unsplit element,
    /// returning only the cost (used by the Algorithm 2 search).
    pub(crate) fn dry_run_element(
        &self,
        id: NodeId,
        q: &Mbr,
        chooser: &mut dyn SplitChooser,
    ) -> RunCost {
        let mut cost = RunCost::default();
        if let NodeKind::Unsplit(orders) = &self.nodes[id as usize].kind {
            let _ = build_element(
                &self.points,
                &self.params,
                orders.clone(),
                Some(q),
                chooser,
                &mut cost,
                &self.pool,
            );
        }
        cost
    }
}
