//! Power-law (Zipf) sampling for synthetic graph generation.
//!
//! Real knowledge graphs' node degrees follow a power law (paper §II,
//! citing [13]). The synthetic dataset generators use this sampler to pick
//! entities with Zipfian popularity so that degree distributions — and
//! therefore the skew of the queried embedding space — match the real
//! datasets in shape.
//!
//! Implementation: inverse-CDF sampling over a precomputed cumulative
//! table. Construction is `O(n)`, sampling is `O(log n)` via binary search.
//! Hand-rolled to avoid a `rand_distr` dependency (see DESIGN.md §4).

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Rank `i` (0-based) has probability proportional to `1 / (i + 1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        assert!(s.is_finite() && s >= 0.0, "invalid Zipf exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            // lint: allow(no-unwrap, the CDF is built from finite positive masses; no entry is NaN)
            .binary_search_by(|p| p.partial_cmp(&u).expect("NaN in CDF"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        let hi = self.cdf[i];
        let lo = if i == 0 { 0.0 } else { self.cdf[i - 1] };
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(1000, 1.1);
        let total: f64 = (0..z.len()).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn rank_zero_is_most_likely() {
        let z = Zipf::new(100, 1.0);
        for i in 1..z.len() {
            assert!(z.pmf(0) >= z.pmf(i));
        }
    }

    #[test]
    fn uniform_when_exponent_zero() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_match_pmf_roughly() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000usize;
        let mut counts = vec![0usize; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // Head of the distribution should be within a few percent.
        for (i, &count) in counts.iter().enumerate().take(5) {
            let observed = count as f64 / n as f64;
            let expected = z.pmf(i);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {i}: observed {observed}, expected {expected}"
            );
        }
        // Tail ranks must still be reachable.
        assert!(counts[49] > 0);
    }

    #[test]
    fn single_rank_support() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(z.sample(&mut rng), 0);
        assert!((z.pmf(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "Zipf over zero ranks")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
