//! The random projection S₁ → S₂.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gaussian::fill_standard_normal;

/// A fixed JL random projection from `in_dim` (the embedding space S₁) to
/// `out_dim = α` (the index space S₂).
///
/// The projection matrix is drawn once at construction and then immutable,
/// so all points and all query centers are mapped consistently for the
/// lifetime of an index.
#[derive(Debug, Clone)]
pub struct JlTransform {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim` matrix, entries `N(0,1)/√α`.
    matrix: Vec<f64>,
}

impl JlTransform {
    /// Draws a projection with `A_ij ~ N(0,1)` and scale `1/√α`.
    ///
    /// # Panics
    /// Panics if either dimensionality is zero or `out_dim > in_dim`.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "dimensionalities must be positive"
        );
        assert!(
            out_dim <= in_dim,
            "JL transform must reduce dimensionality ({out_dim} > {in_dim})"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut matrix = vec![0.0; in_dim * out_dim];
        fill_standard_normal(&mut rng, &mut matrix);
        let scale = 1.0 / (out_dim as f64).sqrt();
        for v in &mut matrix {
            *v *= scale;
        }
        Self {
            in_dim,
            out_dim,
            matrix,
        }
    }

    /// Input (S₁) dimensionality `d`.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output (S₂) dimensionality `α`.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Projects one vector, writing into `out`.
    ///
    /// # Panics
    /// Panics if the slice lengths do not match the transform's shape.
    pub fn apply_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.in_dim, "input dimensionality mismatch");
        assert_eq!(out.len(), self.out_dim, "output dimensionality mismatch");
        for (k, o) in out.iter_mut().enumerate() {
            let row = &self.matrix[k * self.in_dim..(k + 1) * self.in_dim];
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Projects one vector.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.out_dim];
        self.apply_into(x, &mut out);
        out
    }

    /// Projects a row-major `n × in_dim` matrix into a row-major
    /// `n × out_dim` matrix.
    ///
    /// # Panics
    /// Panics if `rows.len()` is not a multiple of `in_dim`.
    pub fn apply_matrix(&self, rows: &[f64]) -> Vec<f64> {
        assert_eq!(rows.len() % self.in_dim, 0, "matrix shape mismatch");
        let n = rows.len() / self.in_dim;
        let mut out = vec![0.0; n * self.out_dim];
        for i in 0..n {
            let x = &rows[i * self.in_dim..(i + 1) * self.in_dim];
            let (lo, hi) = (i * self.out_dim, (i + 1) * self.out_dim);
            self.apply_into(x, &mut out[lo..hi]);
        }
        out
    }

    /// Smallest `rows × in_dim` work size worth dispatching to the pool.
    /// Below it, thread coordination costs more than the multiply saves
    /// (measured: dispatching a ~100k-element multiply across 4 threads
    /// on a small machine *lost* ~40% to scheduling overhead), so the
    /// pooled entry point falls back to the serial loop.
    pub const PAR_WORK_THRESHOLD: usize = 1 << 17;

    /// [`JlTransform::apply_matrix`] with the row loop chunked over a
    /// pool. Every row's dot products are computed exactly as in the
    /// serial path, so the output is bit-identical at any width (rows
    /// are independent; only the interleaving changes). Inputs smaller
    /// than [`JlTransform::PAR_WORK_THRESHOLD`] run serially.
    ///
    /// # Panics
    /// Panics if `rows.len()` is not a multiple of `in_dim`.
    pub fn apply_matrix_pooled(&self, pool: &vkg_sync::pool::Pool, rows: &[f64]) -> Vec<f64> {
        assert_eq!(rows.len() % self.in_dim, 0, "matrix shape mismatch");
        let n = rows.len() / self.in_dim;
        if pool.is_serial() || rows.len() < Self::PAR_WORK_THRESHOLD {
            return self.apply_matrix(rows);
        }
        let chunk_rows = n.div_ceil(pool.width() * 4).max(256);
        let mut out = vec![0.0; n * self.out_dim];
        {
            // Disjoint per-chunk output windows behind uncontended
            // mutexes, so workers write without aliasing or unsafe.
            let slots: Vec<vkg_sync::Mutex<&mut [f64]>> = out
                .chunks_mut(chunk_rows * self.out_dim)
                .map(vkg_sync::Mutex::new)
                .collect();
            pool.run(slots.len(), |c| {
                let row0 = c * chunk_rows;
                let mut window = slots[c].lock();
                let rows_here = window.len() / self.out_dim;
                for i in 0..rows_here {
                    let x = &rows[(row0 + i) * self.in_dim..(row0 + i + 1) * self.in_dim];
                    let (lo, hi) = (i * self.out_dim, (i + 1) * self.out_dim);
                    self.apply_into(x, &mut window[lo..hi]);
                }
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn shapes() {
        let t = JlTransform::new(50, 3, 1);
        assert_eq!(t.in_dim(), 50);
        assert_eq!(t.out_dim(), 3);
        assert_eq!(t.apply(&vec![1.0; 50]).len(), 3);
    }

    #[test]
    fn linearity() {
        let t = JlTransform::new(10, 3, 2);
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..10).map(|i| (10 - i) as f64 * 0.5).collect();
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let tx = t.apply(&x);
        let ty = t.apply(&y);
        let tsum = t.apply(&sum);
        for k in 0..3 {
            assert!((tsum[k] - (tx[k] + ty[k])).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_maps_to_zero() {
        let t = JlTransform::new(8, 2, 3);
        assert!(t.apply(&[0.0; 8]).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = JlTransform::new(20, 3, 9).apply(&[1.0; 20]);
        let b = JlTransform::new(20, 3, 9).apply(&[1.0; 20]);
        assert_eq!(a, b);
        let c = JlTransform::new(20, 3, 10).apply(&[1.0; 20]);
        assert_ne!(a, c);
    }

    #[test]
    fn apply_matrix_matches_apply() {
        let t = JlTransform::new(6, 2, 4);
        let rows = vec![
            1.0, 2.0, 3.0, 4.0, 5.0, 6.0, //
            -1.0, 0.0, 1.0, 0.5, -0.5, 2.0,
        ];
        let m = t.apply_matrix(&rows);
        let r0 = t.apply(&rows[0..6]);
        let r1 = t.apply(&rows[6..12]);
        assert_eq!(&m[0..2], r0.as_slice());
        assert_eq!(&m[2..4], r1.as_slice());
    }

    #[test]
    fn pooled_matrix_is_bit_identical_at_any_width() {
        use vkg_sync::pool::Pool;
        let t = JlTransform::new(16, 3, 11);
        // Large enough that rows × in_dim clears PAR_WORK_THRESHOLD and
        // the pooled path actually dispatches.
        let n = 10_000;
        assert!(n * 16 >= JlTransform::PAR_WORK_THRESHOLD);
        let rows: Vec<f64> = (0..n * 16).map(|i| ((i as f64) * 0.173).sin()).collect();
        let serial = t.apply_matrix(&rows);
        for width in [1, 2, 4] {
            let pooled = t.apply_matrix_pooled(&Pool::new(width), &rows);
            assert_eq!(pooled, serial, "width {width} diverged");
        }
    }

    #[test]
    fn pooled_matrix_skips_dispatch_below_threshold() {
        use vkg_sync::pool::Pool;
        // Work below the threshold still answers identically (it takes
        // the serial path — same code, so trivially bit-identical).
        let t = JlTransform::new(8, 2, 5);
        let rows: Vec<f64> = (0..64 * 8).map(|i| (i as f64) * 0.01).collect();
        assert!(rows.len() < JlTransform::PAR_WORK_THRESHOLD);
        assert_eq!(
            t.apply_matrix_pooled(&Pool::new(4), &rows),
            t.apply_matrix(&rows)
        );
    }

    #[test]
    fn expected_distance_preserved_on_average() {
        // E[‖T(x) − T(y)‖²] = ‖x − y‖², averaged over many projections.
        let x: Vec<f64> = (0..30).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..30).map(|i| (i as f64 * 0.71).cos()).collect();
        let true_dist = l2(&x, &y);
        let trials = 600;
        let mean_sq: f64 = (0..trials)
            .map(|s| {
                let t = JlTransform::new(30, 3, s as u64);
                let d = l2(&t.apply(&x), &t.apply(&y));
                d * d
            })
            .sum::<f64>()
            / trials as f64;
        let ratio = mean_sq / (true_dist * true_dist);
        assert!(
            (ratio - 1.0).abs() < 0.12,
            "E[l2²]/l1² = {ratio}, should be ≈ 1"
        );
    }

    #[test]
    #[should_panic(expected = "reduce dimensionality")]
    fn expansion_rejected() {
        let _ = JlTransform::new(3, 5, 0);
    }

    #[test]
    #[should_panic(expected = "input dimensionality mismatch")]
    fn wrong_input_length_rejected() {
        let t = JlTransform::new(5, 2, 0);
        let _ = t.apply(&[1.0, 2.0]);
    }
}
