//! Contour reads (Definitions 2–3): region search, element summaries,
//! seed probes.
//!
//! Everything here is a *read* of the current contour — none of these
//! operations crack the index (Algorithm 3 cracks once per query, after
//! the result region stabilizes). They do update access statistics,
//! which is why the methods take `&mut self`.

use crate::geometry::{kernels, Mbr};

use super::{CrackingIndex, NodeId, NodeKind};

/// Summary statistics of one contour element's in-region members, handed
/// to the [`CrackingIndex::search_region_elements`] visitor. Per §V-B the
/// index estimates the probabilities of unaccessed points from
/// element-level statistics rather than per-point geometry.
#[derive(Debug, Clone)]
pub struct ElementSummary {
    /// Bounding region of the whole element (not just the in-region part).
    pub mbr: Mbr,
    /// Mean S₂ coordinates of the element's in-region members.
    pub centroid: Vec<f64>,
    /// Mean squared distance of those members from the centroid.
    pub spread_sq: f64,
}

impl CrackingIndex {
    /// Visits every point id inside `q`, updating access statistics.
    ///
    /// This is a pure read: it does **not** crack the index (Algorithm 3
    /// cracks once per query, after the result region stabilizes).
    pub fn search_region(&mut self, q: &Mbr, mut visit: impl FnMut(u32)) {
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            // Split borrows: stats updated after inspecting the node.
            let node = &self.nodes[id as usize];
            if !node.mbr.intersects(q) {
                continue;
            }
            match &node.kind {
                NodeKind::Internal(children) => stack.extend(children.iter().rev().copied()),
                NodeKind::Leaf(ids) => {
                    self.stats.elements_accessed += 1;
                    self.stats.points_examined += ids.len() as u64;
                    for &pid in ids {
                        if self.points.in_region(pid, q) {
                            visit(pid);
                        }
                    }
                }
                NodeKind::Unsplit(orders) => {
                    self.stats.elements_accessed += 1;
                    let ids = orders.ids(0);
                    self.stats.points_examined += ids.len() as u64;
                    for &pid in ids {
                        if self.points.in_region(pid, q) {
                            visit(pid);
                        }
                    }
                }
            }
        }
    }

    /// Like [`CrackingIndex::search_region`], but also hands the visitor
    /// summary statistics of the contour element each point lives in.
    /// The aggregate estimators use the element summary to *approximate*
    /// the probabilities of points they do not access exactly (§V-B: "we
    /// know the number of entities in each element of an index contour,
    /// and hence can estimate the b − a probabilities based on the
    /// average distance of an element to a query point").
    ///
    /// The summary is computed over the element's in-region members that
    /// pass the caller's `keep` predicate — i.e. over the population
    /// actually being proxied. Summarizing filtered-out points (the query
    /// entity's already-known neighbors, say, which cluster right next to
    /// the query) would attribute their near-query mass to the remaining
    /// members and systematically inflate the estimates. With the right
    /// population, `‖q − centroid‖² + spread²` is the exact second moment
    /// of the distance from `q` to a random proxied member — unlike the
    /// element MBR's center, which misrepresents members that cluster
    /// away from the box center.
    pub fn search_region_elements(
        &mut self,
        q: &Mbr,
        mut keep: impl FnMut(u32) -> bool,
        mut visit: impl FnMut(u32, &ElementSummary),
    ) {
        let dim = self.points.dim();
        let mut stack = vec![self.root];
        let mut members: Vec<u32> = Vec::new();
        let mut sum = vec![0.0f64; dim];
        while let Some(id) = stack.pop() {
            // Split borrows: stats updated after inspecting the node.
            let node = &self.nodes[id as usize];
            if !node.mbr.intersects(q) {
                continue;
            }
            let ids: &[u32] = match &node.kind {
                NodeKind::Internal(children) => {
                    stack.extend(children.iter().rev().copied());
                    continue;
                }
                NodeKind::Leaf(ids) => ids,
                NodeKind::Unsplit(orders) => orders.ids(0),
            };
            self.stats.elements_accessed += 1;
            self.stats.points_examined += ids.len() as u64;
            members.clear();
            sum.iter_mut().for_each(|s| *s = 0.0);
            let mut sum_norm_sq = 0.0;
            for &pid in ids {
                if self.points.in_region(pid, q) && keep(pid) {
                    members.push(pid);
                    let p = self.points.point(pid);
                    for (axis, &c) in p.iter().enumerate() {
                        sum[axis] += c;
                    }
                    sum_norm_sq += self.points.norm_sq(pid);
                }
            }
            if members.is_empty() {
                continue;
            }
            let n = members.len() as f64;
            let centroid: Vec<f64> = sum.iter().map(|s| s / n).collect();
            let centroid_norm_sq: f64 = centroid.iter().map(|c| c * c).sum();
            let summary = ElementSummary {
                mbr: node.mbr,
                centroid,
                spread_sq: (sum_norm_sq / n - centroid_norm_sq).max(0.0),
            };
            for &pid in &members {
                visit(pid, &summary);
            }
        }
    }

    /// Probes for the smallest contour element whose region contains (or
    /// is nearest to) `point` — line 2 of Algorithm 3.
    pub fn smallest_element_containing(&self, point: &[f64]) -> NodeId {
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize].kind {
                NodeKind::Internal(children) => {
                    // Prefer a child containing the point; otherwise the
                    // nearest child region.
                    let next = children.iter().copied().min_by(|&a, &b| {
                        let da = self.nodes[a as usize].mbr.min_distance_sq(point);
                        let db = self.nodes[b as usize].mbr.min_distance_sq(point);
                        da.total_cmp(&db)
                    });
                    match next {
                        Some(n) => id = n,
                        // A childless internal node has no smaller element.
                        None => return id,
                    }
                }
                _ => return id,
            }
        }
    }

    /// Walks a contour element's points outward from `center` along one
    /// sort order (the seed scan of Algorithm 3 line 2), returning up to
    /// `k` point ids in that traversal order.
    ///
    /// For an unsplit partition the walk uses the axis-0 sort order and a
    /// two-pointer expansion from the query coordinate; a leaf is scanned
    /// and sorted directly (it holds at most N points).
    pub fn seed_scan(&mut self, element: NodeId, center: &[f64], k: usize) -> Vec<u32> {
        self.stats.elements_accessed += 1;
        match &self.nodes[element as usize].kind {
            NodeKind::Internal(_) => Vec::new(),
            NodeKind::Leaf(ids) => {
                let ids: Vec<u32> = ids.clone();
                self.stats.points_examined += ids.len() as u64;
                let mut dists = vec![0.0f64; ids.len()];
                kernels::distances_sq(&self.pool, &self.points, &ids, center, &mut dists);
                // Stable sort on the distance alone preserves the leaf's
                // id order for ties, matching the old per-comparison sort.
                let mut pairs: Vec<(f64, u32)> = dists.into_iter().zip(ids).collect();
                pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
                pairs.truncate(k);
                pairs.into_iter().map(|(_, id)| id).collect()
            }
            NodeKind::Unsplit(orders) => {
                let order = orders.ids(0);
                let c = center[0];
                // Position of the query coordinate in the axis-0 order.
                let start = order.partition_point(|&id| self.points.coord(id, 0) < c);
                let mut out = Vec::with_capacity(k);
                let (mut lo, mut hi) = (start, start);
                while out.len() < k && (lo > 0 || hi < order.len()) {
                    let take_low = if lo == 0 {
                        false
                    } else if hi >= order.len() {
                        true
                    } else {
                        (c - self.points.coord(order[lo - 1], 0)).abs()
                            <= (self.points.coord(order[hi], 0) - c).abs()
                    };
                    if take_low {
                        lo -= 1;
                        out.push(order[lo]);
                    } else {
                        out.push(order[hi]);
                        hi += 1;
                    }
                }
                self.stats.points_examined += out.len() as u64;
                out
            }
        }
    }
}
