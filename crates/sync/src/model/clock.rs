//! Vector clocks for happens-before tracking.
//!
//! One component per managed thread. Thread `t`'s clock counts the
//! events `t` has performed in its own component and the latest events
//! it has *observed* from every other thread (via lock hand-offs,
//! Acquire loads of Release stores, spawn and join edges). An access
//! with clock `a` happens-before one with clock `b` iff `a ≤ b`
//! component-wise — anything else is concurrency, and concurrency on an
//! unsynchronized cell is a data race.

/// A grow-on-demand vector clock. Missing components read as zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    /// The component for `tid` (zero if never touched).
    pub fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advances `tid`'s own component by one (a new local event).
    pub fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Component-wise maximum: absorb everything `other` has observed.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// `self ≤ other` component-wise: the event stamped `self`
    /// happens-before (or equals) the event stamped `other`.
    pub fn le(&self, other: &VClock) -> bool {
        (0..self.0.len().max(other.0.len())).all(|i| self.get(i) <= other.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_and_concurrency() {
        let mut a = VClock::default();
        let mut b = VClock::default();
        a.tick(0); // a = [1]
        b.join(&a);
        b.tick(1); // b = [1, 1] — a happened-before b
        assert!(a.le(&b));
        assert!(!b.le(&a));

        let mut c = VClock::default();
        c.tick(2); // c = [0, 0, 1] — concurrent with a
        assert!(!a.le(&c));
        assert!(!c.le(&a));
        assert_eq!(c.get(2), 1);
        assert_eq!(c.get(7), 0);
    }
}
