//! Offline stand-in for the slice of `parking_lot` used in this
//! workspace, implemented over `std::sync` primitives.
//!
//! The important API difference `parking_lot` offers over `std` — and the
//! one this shim reproduces — is infallible, non-poisoning lock
//! acquisition: `lock()`, `read()` and `write()` return guards directly
//! instead of `Result`s, and a panic while holding a lock does not poison
//! it for other threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s infallible API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the guarded value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("inner", &self.inner).finish()
    }
}

/// A reader–writer lock with `parking_lot`'s infallible API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available. Never
    /// poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available. Never
    /// poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the guarded value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("inner", &self.inner)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let l = Arc::new(RwLock::new(5));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
