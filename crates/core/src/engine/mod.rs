//! The unified query-engine layer.
//!
//! Every structure that can answer the paper's queries — the cracking
//! index, the bulk-loaded R-tree, and the baselines in `vkg-baselines`
//! (linear scan, PH-tree, H2-ALSH) — implements [`QueryEngine`] against
//! an immutable [`VkgSnapshot`], so the facade, the experiment harness
//! and the benches dispatch uniformly over `&mut dyn QueryEngine`.
//!
//! The trait splits reads from writes architecturally: the snapshot is
//! shared and lock-free; only the engine (whose internal index may crack
//! on every query) needs `&mut self` and, in concurrent settings, a
//! lock.

pub mod shard;
pub mod state;

pub use shard::{shard_of_relation, ShardSetGuard, ShardedEngine};
pub use state::IndexState;

use vkg_kg::{EntityId, RelationId};

use crate::error::{VkgError, VkgResult};
use crate::query::aggregate::{AggregateResult, AggregateSpec};
use crate::query::topk::TopKResult;
use crate::snapshot::{Direction, VkgSnapshot};
use crate::stats::IndexStats;

/// What a parity check may assume about an engine's answers, relative to
/// the exact S₁ ground truth (a linear scan under E′ semantics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Accuracy {
    /// Answers are exactly the ground-truth ids, in order.
    Exact,
    /// Answers approximate the ground truth: the nearest entity must
    /// agree and at least `min_overlap` of the top-k sets must coincide
    /// (Theorem 2-style probabilistic guarantees).
    Approximate {
        /// Minimum fraction of the top-k set shared with ground truth.
        min_overlap: f64,
    },
    /// The engine answers a *different* exact problem (e.g. H2-ALSH's
    /// inner-product search); compare against the engine's own
    /// [`QueryEngine::reference_top_k`] oracle instead, requiring at
    /// least `min_recall` of it.
    SelfOracle {
        /// Minimum recall against the engine's own reference oracle.
        min_recall: f64,
    },
}

/// One k-nearest-neighbor answer in the index space S₂.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Dense entity id.
    pub id: u32,
    /// Distance in S₂.
    pub distance: f64,
}

/// Size and access statistics reported uniformly by every engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Index nodes currently allocated (0 for structureless engines).
    pub nodes: usize,
    /// Approximate index size in bytes (0 for structureless engines).
    pub bytes: usize,
    /// Access counters (zeroed fields where an engine does not count).
    pub counters: IndexStats,
}

/// A query-capable structure over a [`VkgSnapshot`].
///
/// Implementations answer predictive top-k entity queries (Algorithm 3
/// semantics: rank candidate entities by S₁ distance from the query
/// point, excluding the query entity and its known neighbors) and may
/// answer aggregate queries (§V-B). Methods take `&mut self` because
/// answering a query may *reshape* the engine (cracking); pure-read
/// engines simply ignore the mutability.
///
/// ```
/// use vkg_core::engine::{IndexState, QueryEngine};
/// use vkg_core::snapshot::{Direction, VkgSnapshot};
/// use vkg_core::VkgConfig;
/// use vkg_embed::EmbeddingStore;
/// use vkg_kg::{AttributeStore, KnowledgeGraph};
///
/// let mut graph = KnowledgeGraph::new();
/// let likes = graph.add_relation("likes");
/// let a = graph.add_entity("a");
/// let b = graph.add_entity("b");
/// let c = graph.add_entity("c");
/// graph.add_triple(a, likes, b).unwrap();
///
/// let store = EmbeddingStore::from_raw(
///     2,
///     vec![0.0, 0.0, 1.0, 0.0, 1.2, 0.0],
///     vec![1.0, 0.0],
/// );
/// let cfg = VkgConfig { alpha: 2, ..VkgConfig::default() };
/// let snap = VkgSnapshot::new(graph, AttributeStore::new(), store, cfg).unwrap();
///
/// let mut engine = IndexState::cracking(&snap);
/// // (a, likes, ·): b is a known edge, so the top prediction is c.
/// let r = engine.top_k(&snap, a, likes, Direction::Tails, 1).unwrap();
/// assert_eq!(r.predictions[0].id, c.0);
/// ```
pub trait QueryEngine: Send {
    /// Short display name (also used in error messages and CSV output).
    fn name(&self) -> &str;

    /// The accuracy contract this engine's answers satisfy.
    fn accuracy(&self) -> Accuracy {
        Accuracy::Exact
    }

    /// Top-k predicted entities for `(entity, relation)` in `direction`
    /// under E′-only semantics.
    fn top_k(
        &mut self,
        snap: &VkgSnapshot,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
    ) -> VkgResult<TopKResult> {
        self.top_k_filtered(snap, entity, relation, direction, k, &|_| true)
    }

    /// Top-k restricted to entities accepted by `filter` (e.g. only
    /// movies). The E′ semantics (skip known edges, skip self) always
    /// apply on top of the filter.
    fn top_k_filtered(
        &mut self,
        snap: &VkgSnapshot,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
        filter: &dyn Fn(EntityId) -> bool,
    ) -> VkgResult<TopKResult>;

    /// The k nearest entities to an S₁ point, measured in the index
    /// space S₂. The default projects every entity through the
    /// snapshot's transform and scans — exact by definition, and the
    /// yardstick indexed overrides must reproduce.
    fn knn_in_s2(
        &mut self,
        snap: &VkgSnapshot,
        q_s1: &[f64],
        k: usize,
    ) -> VkgResult<Vec<Neighbor>> {
        if k == 0 {
            return Err(VkgError::InvalidParameter("k must be ≥ 1".into()));
        }
        let q_s2 = snap.project(q_s1);
        let embeddings = snap.embeddings();
        let mut all: Vec<Neighbor> = (0..embeddings.num_entities() as u32)
            .map(|id| {
                let p = snap.project(embeddings.entity(EntityId(id)));
                let d = p
                    .iter()
                    .zip(&q_s2)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                Neighbor { id, distance: d }
            })
            .collect();
        all.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        all.truncate(k);
        Ok(all)
    }

    /// Answers an aggregate query over the probability ball around the
    /// query center (§V-B). Engines without element summaries refuse.
    fn aggregate(
        &mut self,
        snap: &VkgSnapshot,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        spec: &AggregateSpec,
    ) -> VkgResult<AggregateResult> {
        let _ = (snap, entity, relation, direction, spec);
        Err(VkgError::Unsupported {
            engine: self.name().to_owned(),
            operation: "aggregate",
        })
    }

    /// The ground-truth top-k ids this engine's answers are judged
    /// against (precision denominators in the evaluation). The default is
    /// the exact S₁ scan under E′ semantics; engines answering a
    /// different problem (e.g. MIPS) override it with their own oracle.
    fn reference_top_k(
        &self,
        snap: &VkgSnapshot,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
    ) -> VkgResult<Vec<u32>> {
        let q_s1 = snap.query_point_s1(entity, relation, direction)?;
        let known = snap.known_neighbors(entity, relation, direction);
        let embeddings = snap.embeddings();
        let mut scored: Vec<(f64, u32)> = (0..embeddings.num_entities() as u32)
            .filter(|&id| id != entity.0 && !known.contains(&id))
            .map(|id| (embeddings.distance_to_entity(&q_s1, EntityId(id)), id))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        scored.truncate(k);
        Ok(scored.into_iter().map(|(_, id)| id).collect())
    }

    /// Current size and access statistics.
    fn stats(&self) -> EngineStats {
        EngineStats::default()
    }

    /// Resets per-query access counters (no-op for engines that do not
    /// count).
    fn reset_access_counters(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use vkg_embed::EmbeddingStore;
    use vkg_kg::{AttributeStore, KnowledgeGraph};

    use crate::config::VkgConfig;

    /// A minimal engine relying entirely on trait defaults.
    struct Defaults;

    impl QueryEngine for Defaults {
        fn name(&self) -> &str {
            "defaults"
        }

        fn top_k_filtered(
            &mut self,
            snap: &VkgSnapshot,
            entity: EntityId,
            relation: RelationId,
            direction: Direction,
            k: usize,
            filter: &dyn Fn(EntityId) -> bool,
        ) -> VkgResult<TopKResult> {
            let _ = (snap, entity, relation, direction, k, filter);
            Err(VkgError::Unsupported {
                engine: "defaults".into(),
                operation: "top_k_filtered",
            })
        }
    }

    fn snap() -> VkgSnapshot {
        let mut g = KnowledgeGraph::new();
        let r = g.add_relation("likes");
        let a = g.add_entity("a");
        let b = g.add_entity("b");
        let _c = g.add_entity("c");
        g.add_triple(a, r, b).unwrap();
        let store = EmbeddingStore::from_raw(2, vec![0.0, 0.0, 1.0, 0.0, 1.2, 0.0], vec![1.0, 0.0]);
        let cfg = VkgConfig {
            alpha: 2,
            ..VkgConfig::default()
        };
        VkgSnapshot::new(g, AttributeStore::new(), store, cfg).unwrap()
    }

    #[test]
    fn default_aggregate_is_unsupported() {
        let s = snap();
        let mut e = Defaults;
        let err = e
            .aggregate(
                &s,
                EntityId(0),
                RelationId(0),
                Direction::Tails,
                &AggregateSpec::count(0.1),
            )
            .unwrap_err();
        assert!(matches!(err, VkgError::Unsupported { .. }));
    }

    #[test]
    fn default_knn_is_exact_s2_scan() {
        let s = snap();
        let mut e = Defaults;
        // Query at a's position: nearest are a (0), then b, then c.
        let nn = e.knn_in_s2(&s, &[0.0, 0.0], 3).unwrap();
        let ids: Vec<u32> = nn.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(nn[0].distance <= nn[1].distance);
        assert!(e.knn_in_s2(&s, &[0.0, 0.0], 0).is_err());
    }

    #[test]
    fn default_reference_is_s1_scan_with_eprime_skip() {
        let s = snap();
        let e = Defaults;
        // (a, likes, ·) = (1, 0): b sits exactly there but is a known
        // edge, so the reference is c then... only c (a excluded too).
        let ids = e
            .reference_top_k(&s, EntityId(0), RelationId(0), Direction::Tails, 5)
            .unwrap();
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn engines_are_object_safe() {
        let mut e = Defaults;
        let obj: &mut dyn QueryEngine = &mut e;
        assert_eq!(obj.name(), "defaults");
        assert_eq!(obj.accuracy(), Accuracy::Exact);
        assert_eq!(obj.stats(), EngineStats::default());
    }
}
