//! Aggregate and statistical queries (§V-B): COUNT, SUM, AVG, MAX, MIN
//! over the attributes of the entities in a probability ball, with the
//! martingale (Azuma) deviation bound of Theorem 4.
//!
//! The relevant entities lie in the S₁ ball of radius `r_τ = d_min/p_τ`
//! around the query center; their probabilities decrease from 1 at the
//! center (inverse-distance model). The estimator accesses only the `a`
//! most-probable of the `b` ball members and scales up per Equation (3)
//! (COUNT/SUM/AVG) or Equation (4) (MAX/MIN).

use crate::geometry::Mbr;

/// Which aggregate to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateKind {
    /// Expected number of relevant entities.
    Count,
    /// Expected sum of an attribute.
    Sum,
    /// Expected average of an attribute.
    Avg,
    /// Expected maximum of an attribute.
    Max,
    /// Expected minimum of an attribute.
    Min,
}

/// Specification of one aggregate query.
#[derive(Debug, Clone)]
pub struct AggregateSpec {
    /// The aggregate to compute.
    pub kind: AggregateKind,
    /// Attribute name (ignored for COUNT).
    pub attribute: Option<String>,
    /// Probability threshold `p_τ` delimiting the ball (paper example:
    /// 0.05; ground truth in §VI uses 0.01).
    pub p_tau: f64,
    /// How many of the closest points to access (`a`); `None` = all.
    pub sample_size: Option<usize>,
}

impl AggregateSpec {
    /// COUNT with threshold `p_τ`.
    pub fn count(p_tau: f64) -> Self {
        Self {
            kind: AggregateKind::Count,
            attribute: None,
            p_tau,
            sample_size: None,
        }
    }

    /// An attribute aggregate with threshold `p_τ`.
    pub fn of(kind: AggregateKind, attribute: &str, p_tau: f64) -> Self {
        Self {
            kind,
            attribute: Some(attribute.to_owned()),
            p_tau,
            sample_size: None,
        }
    }

    /// Restricts the estimator to the `a` most-probable entities.
    pub fn with_sample(mut self, a: usize) -> Self {
        self.sample_size = Some(a);
        self
    }
}

/// The Theorem 4 deviation bound attached to an estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviationBound {
    /// The estimate μ the bound is relative to.
    pub mu: f64,
    /// `Σ_{i≤a} vᵢ² + (b−a)·v_m²` — the martingale increment mass.
    pub increment_mass: f64,
}

impl DeviationBound {
    /// `Pr[|S − μ| ≥ δμ] ≤ 2·exp(−2δ²μ² / (Σ vᵢ² + (b−a)v_m²))`.
    pub fn tail_probability(&self, delta: f64) -> f64 {
        assert!(delta >= 0.0, "δ must be non-negative");
        if self.increment_mass <= 0.0 {
            // No unaccessed mass and zero accessed values: the estimate is
            // exact.
            return if delta == 0.0 { 1.0 } else { 0.0 };
        }
        (2.0 * (-2.0 * delta * delta * self.mu * self.mu / self.increment_mass).exp()).min(1.0)
    }

    /// The smallest relative error δ guaranteed with probability at least
    /// `confidence` (inverts the tail bound).
    pub fn delta_for_confidence(&self, confidence: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&confidence),
            "confidence must be in [0, 1), got {confidence}"
        );
        if self.increment_mass <= 0.0 || self.mu == 0.0 {
            return 0.0;
        }
        let tail = 1.0 - confidence;
        ((self.increment_mass * (2.0 / tail).ln()) / (2.0 * self.mu * self.mu)).sqrt()
    }

    /// Combines the bounds of partial estimates over **disjoint**
    /// populations whose estimates *add* (COUNT/SUM fanned out across
    /// relation partitions): the per-part martingales concatenate into
    /// one martingale over the union, so μ = Σμᵢ and the Azuma
    /// increment masses add. The combined bound is exact Theorem 4 for
    /// the union, not a relaxation.
    pub fn combine_sum(parts: &[DeviationBound]) -> DeviationBound {
        DeviationBound {
            mu: parts.iter().map(|b| b.mu).sum(),
            increment_mass: parts.iter().map(|b| b.increment_mass).sum(),
        }
    }

    /// Combines the bounds of a **convex combination** `Σ λᵢ·μᵢ` (AVG
    /// fanned out across partitions, λᵢ the per-part weight, Σλᵢ = 1):
    /// scaling a martingale by λ scales every increment by λ, so the
    /// masses combine as `Σ λᵢ²·massᵢ`. Like [`DeviationBound::combine_sum`]
    /// this is exact Theorem 4 for the combined estimator.
    pub fn combine_weighted(parts: &[(f64, DeviationBound)]) -> DeviationBound {
        DeviationBound {
            mu: parts.iter().map(|(w, b)| w * b.mu).sum(),
            increment_mass: parts.iter().map(|(w, b)| w * w * b.increment_mass).sum(),
        }
    }

    /// Combines the bounds of an **extremal** merge (MAX/MIN across
    /// partitions, `mu` the merged extremal estimate). The max over
    /// parts deviates by more than `t` only if some part does, so the
    /// union bound gives `Σᵢ 2·exp(−2t²/massᵢ) ≤ 2n·exp(−2t²/max massᵢ)`.
    /// Folding the factor n into the exponent, the combined mass is
    /// `n·maxᵢ massᵢ`, which is conservative:
    /// `min(1, 2e^{−x/n}) ≥ min(1, 2n·e^{−x})` for all x ≥ 0, n ≥ 1
    /// (for x ≤ n·ln 2 the left side is 1; beyond it
    /// `x(1 − 1/n) ≥ ln n` follows from `x ≥ n·ln 2 ≥ ln(2n)`). The
    /// tests sweep this inequality against the raw union bound.
    pub fn combine_extremal(mu: f64, parts: &[DeviationBound]) -> DeviationBound {
        let max_mass = parts.iter().map(|b| b.increment_mass).fold(0.0, f64::max);
        DeviationBound {
            mu,
            increment_mass: parts.len() as f64 * max_mass,
        }
    }
}

/// Result of one aggregate query.
#[derive(Debug, Clone)]
pub struct AggregateResult {
    /// The expected aggregate value.
    pub estimate: f64,
    /// Number of entities accessed (`a`).
    pub accessed: usize,
    /// Total entities in the ball (`b`).
    pub ball_size: usize,
    /// The Theorem 4 deviation bound (meaningful for COUNT/SUM/AVG; for
    /// MAX/MIN it is the analogous bound sketched at the end of §V-B).
    pub bound: DeviationBound,
    /// The regions the index was cracked for while answering (the inner
    /// top-1's region plus the probability ball), kept so a result cache
    /// replaying this answer reproduces the cracks exactly. Empty for
    /// merged results, which crack nothing themselves.
    pub crack_regions: Vec<Mbr>,
}

/// Equation (3): expected SUM from the `a` accessed `(value, probability)`
/// pairs and the probabilities of **all** `b` ball members
/// (`probs_all[i]` descending; the first `values.len()` entries align
/// with `values`).
pub fn estimate_sum(values: &[f64], probs_all: &[f64]) -> f64 {
    let a = values.len();
    assert!(a <= probs_all.len(), "more values than ball members");
    if a == 0 {
        return 0.0;
    }
    let weighted: f64 = values.iter().zip(probs_all).map(|(v, p)| v * p).sum();
    let sum_a: f64 = probs_all[..a].iter().sum();
    let sum_b: f64 = probs_all.iter().sum();
    if sum_a <= 0.0 {
        return 0.0;
    }
    weighted * (sum_b / sum_a)
}

/// COUNT = SUM over the constant 1: `Σ_{i≤b} pᵢ` (independent of `a`
/// because the index already knows every ball member's probability).
pub fn estimate_count(probs_all: &[f64]) -> f64 {
    probs_all.iter().sum()
}

/// AVG = SUM/COUNT: the probability-weighted mean of the accessed values.
pub fn estimate_avg(values: &[f64], probs_all: &[f64]) -> f64 {
    let a = values.len();
    assert!(a <= probs_all.len(), "more values than ball members");
    if a == 0 {
        return 0.0;
    }
    let weighted: f64 = values.iter().zip(probs_all).map(|(v, p)| v * p).sum();
    let sum_a: f64 = probs_all[..a].iter().sum();
    if sum_a <= 0.0 {
        return 0.0;
    }
    weighted / sum_a
}

/// Equation (4): expected MAX from the accessed sample.
///
/// `E[M_S] = Σ uᵢ·pᵢ·∏_{j<i}(1−pⱼ)` with values re-sorted descending, then
/// the sample-maximum correction
/// `E[M] = (E[M_S] − min v)(1 + 1/Σ pᵢ) + min v`.
pub fn estimate_max(values: &[f64], probs: &[f64]) -> f64 {
    let a = values.len();
    assert_eq!(a, probs.len(), "values/probs length mismatch");
    if a == 0 {
        return 0.0;
    }
    // Sort (value, prob) by value descending.
    let mut pairs: Vec<(f64, f64)> = values.iter().copied().zip(probs.iter().copied()).collect();
    pairs.sort_by(|x, y| y.0.total_cmp(&x.0));

    let mut expected_sample_max = 0.0;
    let mut none_before = 1.0;
    for &(u, p) in &pairs {
        expected_sample_max += u * none_before * p;
        none_before *= 1.0 - p;
    }
    let min_v = values.iter().copied().fold(f64::INFINITY, f64::min);
    let sum_p: f64 = probs.iter().sum();
    if sum_p <= 0.0 {
        return expected_sample_max;
    }
    // The sample-maximum correction of [19] assumes an effective sample
    // size Σpᵢ of at least one draw; with less probability mass than one
    // relevant point there is no basis for extrapolating beyond the
    // sample, so the factor is clamped (and the result never drops below
    // the uncorrected expectation — Eq. (4) can otherwise swing negative
    // when E[M_S] < min v).
    let effective_n = sum_p.max(1.0);
    let corrected = (expected_sample_max - min_v) * (1.0 + 1.0 / effective_n) + min_v;
    corrected.max(expected_sample_max)
}

/// MIN via negation: `MIN(v) = −MAX(−v)`.
pub fn estimate_min(values: &[f64], probs: &[f64]) -> f64 {
    let negated: Vec<f64> = values.iter().map(|v| -v).collect();
    -estimate_max(&negated, probs)
}

/// Builds the Theorem 4 deviation bound.
///
/// * `mu` — the estimate.
/// * `accessed_values` — the `a` accessed attribute values (1s for COUNT).
/// * `unaccessed_probs` — the `b − a` estimated inclusion probabilities of
///   the unaccessed points (only their count enters the mass: the Azuma
///   increment of an unrevealed member is its full value range `v_m`,
///   whatever its inclusion probability).
/// * `v_max_unaccessed` — (an upper estimate of) the largest |value| among
///   the unaccessed points. The paper suggests R-tree statistics or the
///   sample-max inflation of Eq. (4); callers pick.
pub fn deviation_bound(
    mu: f64,
    accessed_values: &[f64],
    unaccessed_probs: &[f64],
    v_max_unaccessed: f64,
) -> DeviationBound {
    let mass: f64 = accessed_values.iter().map(|v| v * v).sum::<f64>()
        + unaccessed_probs.len() as f64 * v_max_unaccessed * v_max_unaccessed;
    DeviationBound {
        mu,
        increment_mass: mass,
    }
}

/// Merges per-relation partial aggregates — one [`AggregateResult`] per
/// relation of a multi-relation query, computed over **disjoint** ball
/// populations (each relation has its own query center) — into one
/// combined estimate with a combined Theorem 4 bound.
///
/// * COUNT/SUM add: disjoint populations, so the estimates and the
///   martingale masses sum ([`DeviationBound::combine_sum`]).
/// * AVG is the ball-size-weighted mean of the per-relation averages —
///   an approximation of the pooled average (exact when per-relation
///   inclusion-probability profiles agree), with the convex-combination
///   bound ([`DeviationBound::combine_weighted`]). Parts with empty
///   balls carry zero weight; if every ball is empty the weights fall
///   back to uniform.
/// * MAX/MIN take the extremum over parts with non-empty balls, with
///   the union bound folded into one mass
///   ([`DeviationBound::combine_extremal`]).
pub fn merge_partials(kind: AggregateKind, parts: &[AggregateResult]) -> AggregateResult {
    let accessed = parts.iter().map(|p| p.accessed).sum();
    let ball_size = parts.iter().map(|p| p.ball_size).sum();
    let (estimate, bound) = match kind {
        AggregateKind::Count | AggregateKind::Sum => {
            let bounds: Vec<DeviationBound> = parts.iter().map(|p| p.bound).collect();
            (
                parts.iter().map(|p| p.estimate).sum(),
                DeviationBound::combine_sum(&bounds),
            )
        }
        AggregateKind::Avg => {
            let total: f64 = parts.iter().map(|p| p.ball_size as f64).sum();
            let weighted: Vec<(f64, DeviationBound)> = parts
                .iter()
                .map(|p| {
                    let w = if total > 0.0 {
                        p.ball_size as f64 / total
                    } else {
                        1.0 / parts.len().max(1) as f64
                    };
                    (w, p.bound)
                })
                .collect();
            let estimate = parts
                .iter()
                .zip(&weighted)
                .map(|(p, (w, _))| w * p.estimate)
                .sum();
            (estimate, DeviationBound::combine_weighted(&weighted))
        }
        AggregateKind::Max | AggregateKind::Min => {
            // Empty balls contribute no candidate extremum (their 0.0
            // placeholder estimate must not win against negative values).
            let live: Vec<&AggregateResult> = parts.iter().filter(|p| p.ball_size > 0).collect();
            if live.is_empty() {
                (
                    0.0,
                    DeviationBound {
                        mu: 0.0,
                        increment_mass: 0.0,
                    },
                )
            } else {
                let estimate = live.iter().map(|p| p.estimate).fold(
                    if kind == AggregateKind::Max {
                        f64::NEG_INFINITY
                    } else {
                        f64::INFINITY
                    },
                    if kind == AggregateKind::Max {
                        f64::max
                    } else {
                        f64::min
                    },
                );
                let bounds: Vec<DeviationBound> = live.iter().map(|p| p.bound).collect();
                (
                    estimate,
                    DeviationBound::combine_extremal(estimate, &bounds),
                )
            }
        }
    };
    AggregateResult {
        estimate,
        accessed,
        ball_size,
        bound,
        crack_regions: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_with_full_access_is_expected_value() {
        // Full access (a = b): E[s] = Σ vᵢpᵢ · (Σp/Σp) = Σ vᵢpᵢ.
        let values = [10.0, 20.0, 30.0];
        let probs = [1.0, 0.5, 0.25];
        let e = estimate_sum(&values, &probs);
        assert!((e - (10.0 + 10.0 + 7.5)).abs() < 1e-12);
    }

    #[test]
    fn sum_scales_partial_sample() {
        // Access only the first of two identical points: estimator must
        // scale up by Σ_b p / Σ_a p = 1.5/1.0.
        let e = estimate_sum(&[10.0], &[1.0, 0.5]);
        assert!((e - 15.0).abs() < 1e-12);
    }

    #[test]
    fn count_sums_probabilities() {
        assert!((estimate_count(&[1.0, 0.5, 0.25, 0.05]) - 1.8).abs() < 1e-12);
        assert_eq!(estimate_count(&[]), 0.0);
    }

    #[test]
    fn avg_is_weighted_mean() {
        let e = estimate_avg(&[10.0, 30.0], &[1.0, 0.5]);
        assert!((e - (10.0 + 15.0) / 1.5).abs() < 1e-12);
        // Constant values → AVG equals the constant regardless of probs.
        let c = estimate_avg(&[7.0, 7.0, 7.0], &[1.0, 0.3, 0.1]);
        assert!((c - 7.0).abs() < 1e-12);
    }

    #[test]
    fn avg_unaffected_by_unaccessed_probability_mass() {
        let partial = estimate_avg(&[10.0, 30.0], &[1.0, 0.5, 0.4, 0.3]);
        let full_probs = estimate_avg(&[10.0, 30.0], &[1.0, 0.5]);
        assert!((partial - full_probs).abs() < 1e-12);
    }

    #[test]
    fn max_with_certain_point_is_that_point_dominated() {
        // Single certain value: E[M_S] = v; correction (v−v)(1+1/1)+v = v.
        let e = estimate_max(&[42.0], &[1.0]);
        assert!((e - 42.0).abs() < 1e-12);
    }

    #[test]
    fn max_correction_extrapolates_beyond_sample() {
        // Uniform sample far from its own max → estimator exceeds the
        // sample max (the (1 + 1/n) correction of [19]).
        let values = [1.0, 2.0, 3.0, 4.0];
        let probs = [1.0, 1.0, 1.0, 1.0];
        let e = estimate_max(&values, &probs);
        assert!(e > 4.0, "estimate {e} should exceed the sample max");
        assert!(e < 6.0, "estimate {e} unreasonably large");
    }

    #[test]
    fn max_weighs_improbable_large_values_less() {
        let certain = estimate_max(&[10.0, 100.0], &[1.0, 1.0]);
        let unlikely = estimate_max(&[10.0, 100.0], &[1.0, 0.01]);
        assert!(unlikely < certain);
    }

    #[test]
    fn min_mirrors_max() {
        let values = [3.0, 9.0, 1.0];
        let probs = [1.0, 0.5, 0.8];
        let min = estimate_min(&values, &probs);
        let neg: Vec<f64> = values.iter().map(|v| -v).collect();
        let max_of_neg = estimate_max(&neg, &probs);
        assert!((min + max_of_neg).abs() < 1e-12);
        assert!(min < 3.0, "min estimate {min} should be pulled low");
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(estimate_sum(&[], &[]), 0.0);
        assert_eq!(estimate_avg(&[], &[]), 0.0);
        assert_eq!(estimate_max(&[], &[]), 0.0);
        assert_eq!(estimate_min(&[], &[]), 0.0);
    }

    #[test]
    fn deviation_bound_monotone_in_delta() {
        let b = deviation_bound(100.0, &[5.0, 5.0, 5.0], &[1.0; 10], 5.0);
        let mut prev = f64::INFINITY;
        for d in [0.01, 0.05, 0.1, 0.5, 1.0] {
            let p = b.tail_probability(d);
            assert!(p <= prev);
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn deviation_bound_tightens_with_more_access() {
        // Accessing more points moves mass from (b−a)v_m² to Σ v² with
        // smaller values → smaller increment mass → tighter bound.
        let loose = deviation_bound(100.0, &[5.0], &[1.0; 20], 10.0);
        let tight = deviation_bound(100.0, &[5.0; 15], &[1.0; 6], 10.0);
        assert!(tight.increment_mass < loose.increment_mass);
        assert!(tight.tail_probability(0.1) <= loose.tail_probability(0.1));
    }

    #[test]
    fn confidence_inversion_roundtrip() {
        let b = deviation_bound(50.0, &[2.0; 10], &[1.0; 5], 3.0);
        for conf in [0.5, 0.9, 0.99] {
            let delta = b.delta_for_confidence(conf);
            let tail = b.tail_probability(delta);
            assert!(
                tail <= 1.0 - conf + 1e-9,
                "conf {conf}: δ {delta} gives tail {tail}"
            );
        }
    }

    #[test]
    fn exact_estimate_has_zero_tail() {
        let b = deviation_bound(10.0, &[], &[], 0.0);
        assert_eq!(b.tail_probability(0.5), 0.0);
        assert_eq!(b.delta_for_confidence(0.99), 0.0);
    }

    #[test]
    fn combine_sum_equals_concatenated_population() {
        // Splitting one population into two disjoint parts and combining
        // must reproduce the bound over the whole population exactly.
        let whole = deviation_bound(30.0, &[5.0, 5.0, 2.0], &[1.0; 8], 4.0);
        let left = deviation_bound(18.0, &[5.0, 5.0], &[1.0; 3], 4.0);
        let right = deviation_bound(12.0, &[2.0], &[1.0; 5], 4.0);
        let combined = DeviationBound::combine_sum(&[left, right]);
        assert!((combined.mu - whole.mu).abs() < 1e-12);
        assert!((combined.increment_mass - whole.increment_mass).abs() < 1e-12);
    }

    #[test]
    fn combine_sum_of_exact_parts_stays_exact() {
        let exact = DeviationBound {
            mu: 3.0,
            increment_mass: 0.0,
        };
        let combined = DeviationBound::combine_sum(&[exact, exact]);
        assert_eq!(combined.tail_probability(0.1), 0.0);
    }

    #[test]
    fn combine_weighted_identity_and_scaling() {
        let b = deviation_bound(50.0, &[2.0; 10], &[1.0; 5], 3.0);
        // A single full-weight part is unchanged.
        let one = DeviationBound::combine_weighted(&[(1.0, b)]);
        assert_eq!(one, b);
        // Halving the weight quarters the mass (λ² scaling).
        let half = DeviationBound::combine_weighted(&[(0.5, b)]);
        assert!((half.mu - 25.0).abs() < 1e-12);
        assert!((half.increment_mass - b.increment_mass / 4.0).abs() < 1e-12);
    }

    #[test]
    fn combine_extremal_dominates_union_bound() {
        // The folded single-mass bound must never claim a smaller tail
        // than the raw union bound it stands in for.
        let masses = [[4.0, 9.0], [0.5, 100.0], [25.0, 25.0]];
        for pair in masses {
            let parts: Vec<DeviationBound> = pair
                .iter()
                .map(|&m| DeviationBound {
                    mu: 10.0,
                    increment_mass: m,
                })
                .collect();
            let combined = DeviationBound::combine_extremal(10.0, &parts);
            for t in [0.5, 1.0, 2.0, 5.0, 10.0, 30.0] {
                let union: f64 = parts
                    .iter()
                    .map(|p| 2.0 * (-2.0 * t * t / p.increment_mass).exp())
                    .sum::<f64>()
                    .min(1.0);
                let folded = combined.tail_probability(t / combined.mu);
                assert!(
                    folded >= union - 1e-12,
                    "folded {folded} < union {union} at t = {t}, masses {pair:?}"
                );
            }
        }
    }

    #[test]
    fn merge_partials_count_and_sum_add() {
        let part = |est: f64, a: usize, b: usize| AggregateResult {
            estimate: est,
            accessed: a,
            ball_size: b,
            bound: deviation_bound(est, &[1.0; 2], &[1.0; 3], 1.0),
            crack_regions: Vec::new(),
        };
        let merged = merge_partials(AggregateKind::Count, &[part(3.0, 2, 5), part(7.0, 2, 5)]);
        assert!((merged.estimate - 10.0).abs() < 1e-12);
        assert_eq!(merged.accessed, 4);
        assert_eq!(merged.ball_size, 10);
        assert!((merged.bound.mu - 10.0).abs() < 1e-12);
        assert!((merged.bound.increment_mass - 2.0 * (2.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn merge_partials_avg_weights_by_ball_size() {
        let part = |est: f64, b: usize| AggregateResult {
            estimate: est,
            accessed: b,
            ball_size: b,
            bound: DeviationBound {
                mu: est,
                increment_mass: 1.0,
            },
            crack_regions: Vec::new(),
        };
        // 3 members averaging 10 and 1 member averaging 50 → 20.
        let merged = merge_partials(AggregateKind::Avg, &[part(10.0, 3), part(50.0, 1)]);
        assert!((merged.estimate - 20.0).abs() < 1e-12);
        // All-empty parts fall back to uniform weights.
        let empty = merge_partials(AggregateKind::Avg, &[part(4.0, 0), part(8.0, 0)]);
        assert!((empty.estimate - 6.0).abs() < 1e-12);
    }

    #[test]
    fn merge_partials_extrema_skip_empty_balls() {
        let part = |est: f64, b: usize| AggregateResult {
            estimate: est,
            accessed: b,
            ball_size: b,
            bound: DeviationBound {
                mu: est,
                increment_mass: 2.0,
            },
            crack_regions: Vec::new(),
        };
        // The empty part's 0.0 placeholder must not beat the negative max.
        let merged = merge_partials(AggregateKind::Max, &[part(-5.0, 3), part(0.0, 0)]);
        assert!((merged.estimate - -5.0).abs() < 1e-12);
        assert!(
            (merged.bound.increment_mass - 2.0).abs() < 1e-12,
            "n = 1 live part"
        );
        let merged = merge_partials(AggregateKind::Min, &[part(4.0, 2), part(9.0, 2)]);
        assert!((merged.estimate - 4.0).abs() < 1e-12);
        assert!(
            (merged.bound.increment_mass - 4.0).abs() < 1e-12,
            "n·max mass"
        );
        // Every ball empty → exact zero.
        let none = merge_partials(AggregateKind::Max, &[part(1.0, 0)]);
        assert_eq!(none.estimate, 0.0);
        assert_eq!(none.bound.tail_probability(0.5), 0.0);
    }

    #[test]
    fn spec_builders() {
        let c = AggregateSpec::count(0.05);
        assert_eq!(c.kind, AggregateKind::Count);
        assert!(c.attribute.is_none());
        let s = AggregateSpec::of(AggregateKind::Avg, "year", 0.01).with_sample(100);
        assert_eq!(s.kind, AggregateKind::Avg);
        assert_eq!(s.attribute.as_deref(), Some("year"));
        assert_eq!(s.sample_size, Some(100));
    }
}
