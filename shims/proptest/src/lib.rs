//! Offline stand-in for the slice of `proptest` used by the workspace
//! property tests.
//!
//! Provides the `proptest!` macro, a [`strategy::Strategy`] trait with
//! range / tuple / collection / regex-string strategies and `prop_map`,
//! `any::<T>()` arbitraries, and `prop_assert!` / `prop_assert_eq!`.
//! Unlike the real crate there is **no shrinking** and no failure
//! persistence: cases are generated from a per-test deterministic seed,
//! so failures reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod config;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    pub mod prop {
        //! Namespaced strategy modules (`prop::collection::vec`, …).
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// Each `fn name(pat in strategy, arg: Type) { body }` item expands to a
/// plain test that evaluates the body over `ProptestConfig::cases`
/// generated inputs. An optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]` overrides the
/// case count for the whole block.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            ($crate::config::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::config::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                $crate::__proptest_bindings! { __rng, ($($params)*) }
                // Bodies may `return Ok(())` early, as under the real
                // crate where they run inside a Result-returning closure.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("property case rejected: {e:?}");
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ( $rng:ident, () ) => {};
    ( $rng:ident, ( $pat:pat in $strat:expr ) ) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ( $rng:ident, ( $pat:pat in $strat:expr, $($rest:tt)* ) ) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bindings! { $rng, ($($rest)*) }
    };
    ( $rng:ident, ( $arg:ident : $ty:ty ) ) => {
        let $arg: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
    ( $rng:ident, ( $arg:ident : $ty:ty, $($rest:tt)* ) ) => {
        let $arg: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bindings! { $rng, ($($rest)*) }
    };
}

/// Chooses among strategies, optionally weighted
/// (`prop_oneof![2 => a, 1 => b]` draws `a` twice as often), mirroring
/// `proptest::prop_oneof!`. All arms must yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::prop_oneof![ $( 1 => $strat ),+ ]
    };
}

/// Asserts a condition inside a `proptest!` body (panics on failure; the
/// real crate's early-return semantics are not needed without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(u8, u8)>> {
        prop::collection::vec((0u8..10, 0u8..10), 0..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn range_strategies_respect_bounds(x in -5.0f64..5.0, n in 1usize..9) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn mixed_binding_forms(v in pairs(), seed: u64, flag in any::<bool>()) {
            for &(a, b) in &v {
                prop_assert!(a < 10 && b < 10);
            }
            let _ = seed;
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn prop_map_applies(len in prop::collection::vec(0u32..3, 4..=4)
            .prop_map(|v| v.len()))
        {
            prop_assert_eq!(len, 4);
        }

        #[test]
        fn oneof_draws_every_weighted_arm(picks in prop::collection::vec(
            prop_oneof![3 => Just(0u8), 1 => 1u8..3], 64..=64))
        {
            prop_assert!(picks.iter().all(|&p| p < 3));
            // 64 draws at 3:1 odds make an all-range-arm sample
            // astronomically unlikely; the deterministic seed makes
            // this stable in practice.
            prop_assert!(picks.contains(&0));
        }

        #[test]
        fn regex_strings_match_class(s in "[a-z]{1,6}") {
            prop_assert!(!s.is_empty() && s.len() <= 6);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
