//! Configuration of the index and query layers.

/// How node splits are chosen when the index cracks for a query (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// The greedy single-choice INCREMENTALINDEXBUILD: each binary split
    /// takes the locally optimal `(c_Q, c_O)` candidate.
    Greedy,
    /// TOP-KSPLITSINDEXBUILD (Algorithm 2): explore the top-`choices`
    /// split candidates with A*-style pruning over contour change
    /// candidates. The paper evaluates 2–4 choices.
    TopK {
        /// Number of split choices explored at each decision (≥ 1).
        choices: usize,
    },
}

impl SplitStrategy {
    /// The number of alternatives explored per split.
    pub fn choices(self) -> usize {
        match self {
            SplitStrategy::Greedy => 1,
            SplitStrategy::TopK { choices } => choices.max(1),
        }
    }
}

/// Parameters of a [`crate::vkg::VirtualKnowledgeGraph`] and its index.
#[derive(Debug, Clone)]
pub struct VkgConfig {
    /// Dimensionality α of the index space S₂ (paper: 3 or 6).
    pub alpha: usize,
    /// The ε of Algorithm 3's radius inflation `r_q = r*_k(1+ε)`; larger
    /// values trade speed for recall per Theorem 2.
    pub epsilon: f64,
    /// Leaf capacity `N` — max data-point entries per leaf node.
    pub leaf_capacity: usize,
    /// Non-leaf fanout `M` — max children per internal node.
    pub fanout: usize,
    /// The β ≥ 1 of the overlap cost `c_O += βʰ·‖O‖/min(‖L‖,‖H‖)`:
    /// overlaps higher in the tree cost more.
    pub beta: f64,
    /// Split-choice strategy for cracking.
    pub split_strategy: SplitStrategy,
    /// Whether split ranking uses the query-aware `c_Q` major order
    /// (§IV-B1). Disabled only by the `abl_cost` ablation.
    pub query_aware_cost: bool,
    /// Seed for the JL projection matrix.
    pub transform_seed: u64,
    /// Width of the data-parallel pool the engine hands to the JL
    /// projection, bulk build, and batched distance kernels. Width 1
    /// (the default) takes the exact serial code paths, so results are
    /// bit-identical to a build without the pool and model tests stay
    /// deterministic. See [`threads_from_env`] for the `VKG_THREADS`
    /// override.
    pub threads: usize,
    /// Number of relation-partitioned engine shards. Each shard owns its
    /// own cracking R-tree, lock, and epoch counter; a query ⟨e, r⟩
    /// takes only r's shard lock, so traffic on one hot relation never
    /// stalls queries on another. Shard count 1 (the default) is the
    /// single-lock engine, bit-identical to the pre-sharding layout —
    /// and *any* shard count returns identical answers (shards differ
    /// only in which queries crack which tree). See [`shards_from_env`]
    /// for the `VKG_SHARDS` override.
    pub shards: usize,
    /// Capacity (entries) of the epoch-keyed result cache on the facade's
    /// read path; `0` (the default) disables caching entirely, taking the
    /// exact pre-cache code paths. A hit is only served when the global
    /// and shard epochs still match the entry, and the entry's recorded
    /// crack regions are replayed, so cached answers stay bit-identical
    /// to recomputation. See [`cache_from_env`] for the `VKG_CACHE`
    /// override.
    pub cache_capacity: usize,
}

impl Default for VkgConfig {
    fn default() -> Self {
        Self {
            alpha: 3,
            epsilon: 3.0,
            leaf_capacity: 32,
            fanout: 8,
            beta: 2.0,
            split_strategy: SplitStrategy::Greedy,
            query_aware_cost: true,
            transform_seed: 0x4a4c_5452, // "JLTR"
            threads: 1,
            shards: 1,
            cache_capacity: 0,
        }
    }
}

/// Reads the pool width from the `VKG_THREADS` environment variable.
///
/// `0` or an unset/unparsable value falls back to `default_width`
/// (clamped to ≥ 1), so deployments opt into parallelism explicitly
/// and tests stay serial unless asked otherwise.
pub fn threads_from_env(default_width: usize) -> usize {
    match std::env::var("VKG_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_width.max(1),
        },
        Err(_) => default_width.max(1),
    }
}

/// Reads the engine shard count from the `VKG_SHARDS` environment
/// variable.
///
/// `0` or an unset/unparsable value falls back to `default_shards`
/// (clamped to ≥ 1), mirroring [`threads_from_env`]: deployments opt
/// into sharding explicitly and tests run single-shard unless asked
/// otherwise.
pub fn shards_from_env(default_shards: usize) -> usize {
    match std::env::var("VKG_SHARDS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_shards.max(1),
        },
        Err(_) => default_shards.max(1),
    }
}

/// Entry capacity selected by `VKG_CACHE=on` when no explicit size is
/// given: enough for the hot set of a Zipf-skewed query stream at the
/// harness's scales without holding a large snapshot's worth of results.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Reads the result-cache capacity from the `VKG_CACHE` environment
/// variable.
///
/// Accepts `on` (= [`DEFAULT_CACHE_CAPACITY`]), `off` (= 0, disabled)
/// or an explicit entry count; an unset or unparsable value falls back
/// to `default_capacity`, mirroring [`threads_from_env`]: deployments
/// opt into caching explicitly and tests run uncached unless asked
/// otherwise.
pub fn cache_from_env(default_capacity: usize) -> usize {
    match std::env::var("VKG_CACHE") {
        Ok(v) => match v.trim() {
            "on" => DEFAULT_CACHE_CAPACITY,
            "off" => 0,
            other => other.parse::<usize>().unwrap_or(default_capacity),
        },
        Err(_) => default_capacity,
    }
}

/// Reads the write-ahead-log path from the `VKG_WAL` environment
/// variable.
///
/// Unset or empty means no WAL: the engine keeps today's purely
/// in-memory dynamic-write path, bit-identical to the pre-durability
/// behavior. Deployments opt into durability explicitly, mirroring
/// [`threads_from_env`].
pub fn wal_from_env() -> Option<std::path::PathBuf> {
    match std::env::var("VKG_WAL") {
        Ok(v) if !v.trim().is_empty() => Some(std::path::PathBuf::from(v.trim())),
        _ => None,
    }
}

impl VkgConfig {
    /// Validates invariants the index relies on, reporting violations as
    /// [`VkgError::InvalidParameter`](crate::error::VkgError::InvalidParameter).
    pub fn try_validate(&self) -> Result<(), crate::error::VkgError> {
        let fail = |msg: String| Err(crate::error::VkgError::InvalidParameter(msg));
        if self.alpha < 1 {
            return fail("α must be ≥ 1".into());
        }
        if self.alpha > crate::geometry::MAX_DIM {
            return fail(format!(
                "α = {} exceeds MAX_DIM = {}",
                self.alpha,
                crate::geometry::MAX_DIM
            ));
        }
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return fail("ε must be positive".into());
        }
        if self.leaf_capacity < 2 {
            return fail("leaf capacity N must be ≥ 2".into());
        }
        if self.fanout < 2 {
            return fail("fanout M must be ≥ 2".into());
        }
        if !self.beta.is_finite() || self.beta < 1.0 {
            return fail("β must be ≥ 1 (paper §IV-B1)".into());
        }
        if self.threads < 1 {
            return fail("thread pool width must be ≥ 1".into());
        }
        if self.shards < 1 {
            return fail("shard count must be ≥ 1".into());
        }
        Ok(())
    }

    /// Panicking form of [`VkgConfig::try_validate`], kept for the
    /// assembly paths that treat a bad configuration as a programming
    /// error.
    ///
    /// # Panics
    /// Panics on invalid parameter combinations.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        VkgConfig::default().validate();
    }

    #[test]
    fn choices_accessor() {
        assert_eq!(SplitStrategy::Greedy.choices(), 1);
        assert_eq!(SplitStrategy::TopK { choices: 4 }.choices(), 4);
        assert_eq!(SplitStrategy::TopK { choices: 0 }.choices(), 1);
    }

    #[test]
    #[should_panic(expected = "β must be ≥ 1")]
    fn beta_below_one_rejected() {
        let cfg = VkgConfig {
            beta: 0.5,
            ..VkgConfig::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_DIM")]
    fn oversized_alpha_rejected() {
        let cfg = VkgConfig {
            alpha: 99,
            ..VkgConfig::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "fanout M must be ≥ 2")]
    fn tiny_fanout_rejected() {
        let cfg = VkgConfig {
            fanout: 1,
            ..VkgConfig::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "pool width must be ≥ 1")]
    fn zero_threads_rejected() {
        let cfg = VkgConfig {
            threads: 0,
            ..VkgConfig::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "shard count must be ≥ 1")]
    fn zero_shards_rejected() {
        let cfg = VkgConfig {
            shards: 0,
            ..VkgConfig::default()
        };
        cfg.validate();
    }

    #[test]
    fn env_width_falls_back_to_default() {
        // The suite never sets VKG_THREADS, so the fallback applies
        // (reading an env var other tests might set would be racy).
        assert_eq!(threads_from_env(0), 1);
        assert_eq!(threads_from_env(4), 4);
    }

    #[test]
    fn env_shards_fall_back_to_default() {
        // The suite never sets VKG_SHARDS (CI sets it only for the
        // dedicated shard-parity job, which runs microbench, not tests).
        assert_eq!(shards_from_env(0), 1);
        assert_eq!(shards_from_env(7), 7);
    }

    #[test]
    fn env_cache_falls_back_to_default() {
        // The suite never sets VKG_CACHE (CI sets it only for the
        // dedicated cache-parity job, which runs serve_load, not tests),
        // so the fallback applies — including 0 = disabled.
        assert_eq!(cache_from_env(0), 0);
        assert_eq!(cache_from_env(256), 256);
    }

    #[test]
    fn env_wal_defaults_to_disabled() {
        // The suite never sets VKG_WAL (CI sets it only for the
        // crash-recovery job, which runs serve_load, not tests), so the
        // engine stays on the in-memory write path by default.
        assert_eq!(wal_from_env(), None);
    }
}
