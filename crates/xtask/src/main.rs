//! Workspace automation. One subcommand so far:
//!
//! ```text
//! cargo run -p xtask -- lint [--github] [--self-test]
//! ```
//!
//! Lints every `.rs` file under `crates/` with the hand-rolled rule
//! engine in [`rules`] (see `DESIGN.md` §3.3 for the rule catalogue and
//! rationale). `--github` switches output to GitHub Actions `::error`
//! annotations; `--self-test` runs the rules against the fixtures in
//! `crates/xtask/fixtures/`, verifying each rule demonstrably fires
//! where expected and stays silent where not.

mod lexer;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rules::Finding;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let github = args.iter().any(|a| a == "--github");
            let root = repo_root();
            if args.iter().any(|a| a == "--self-test") {
                match self_test(&root) {
                    Ok(report) => {
                        println!("{report}");
                        ExitCode::SUCCESS
                    }
                    Err(failures) => {
                        for f in &failures {
                            eprintln!("{f}");
                        }
                        eprintln!("lint self-test: {} failure(s)", failures.len());
                        ExitCode::FAILURE
                    }
                }
            } else {
                let (checked, findings) = lint_workspace(&root);
                for f in &findings {
                    if github {
                        println!("{}", f.render_github());
                    } else {
                        println!("{}", f.render());
                    }
                }
                if findings.is_empty() {
                    println!("lint: {checked} files clean");
                    ExitCode::SUCCESS
                } else {
                    eprintln!("lint: {} finding(s) across {checked} files", findings.len());
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--github] [--self-test]");
            ExitCode::from(2)
        }
    }
}

fn repo_root() -> PathBuf {
    // crates/xtask → repo root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels under the repo root")
        .to_path_buf()
}

/// Lints all sources under `crates/` and the top-level `tests/`.
/// Returns `(files_checked, findings)`.
fn lint_workspace(root: &Path) -> (usize, Vec<Finding>) {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    collect_rs(&root.join("tests"), &mut files);
    files.sort();
    let mut findings = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        if rel.starts_with("crates/xtask/fixtures/") {
            continue; // deliberately-bad inputs
        }
        let Ok(src) = std::fs::read_to_string(file) else {
            continue;
        };
        checked += 1;
        findings.extend(rules::lint_source(&rel, &src));
    }
    (checked, findings)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Runs the rules over the fixture corpus. Every fixture declares the
/// path it pretends to live at (`// pretend: <path>`) and marks each
/// line that must fire with `// expect: <rule> [<rule>…]`. The test
/// fails on any missing or unexpected finding, so the fixtures prove
/// both directions: rules fire where they must and nowhere else.
fn self_test(root: &Path) -> Result<String, Vec<String>> {
    let dir = root.join("crates/xtask/fixtures");
    let mut fixtures: Vec<PathBuf> = Vec::new();
    collect_rs(&dir, &mut fixtures);
    fixtures.sort();
    let mut failures = Vec::new();
    let mut total_expected = 0usize;
    if fixtures.is_empty() {
        failures.push(format!("no fixtures found under {}", dir.display()));
    }
    for fixture in &fixtures {
        let name = fixture.file_name().unwrap_or_default().to_string_lossy();
        let Ok(src) = std::fs::read_to_string(fixture) else {
            failures.push(format!("{name}: unreadable"));
            continue;
        };
        let scrubbed = lexer::scrub(&src);
        let Some(pretend) = scrubbed
            .comments
            .iter()
            .find_map(|c| c.text.strip_prefix("pretend: ").map(str::to_string))
        else {
            failures.push(format!("{name}: missing `// pretend: <path>` header"));
            continue;
        };
        // (line, rule) pairs the fixture promises.
        let mut expected: Vec<(usize, String)> = Vec::new();
        for c in &scrubbed.comments {
            if let Some(pos) = c.text.find("expect: ") {
                for rule in c.text[pos + "expect: ".len()..].split_whitespace() {
                    expected.push((c.line, rule.to_string()));
                }
            }
        }
        total_expected += expected.len();
        let mut actual: Vec<(usize, String)> = rules::lint_source(&pretend, &src)
            .into_iter()
            .map(|f| (f.line, f.rule.to_string()))
            .collect();
        expected.sort();
        actual.sort();
        for miss in expected.iter().filter(|e| !actual.contains(e)) {
            failures.push(format!(
                "{name}:{}: expected `{}` to fire, it did not",
                miss.0, miss.1
            ));
        }
        for extra in actual.iter().filter(|a| !expected.contains(a)) {
            failures.push(format!(
                "{name}:{}: unexpected `{}` finding",
                extra.0, extra.1
            ));
        }
    }
    if failures.is_empty() {
        Ok(format!(
            "lint self-test: {} fixtures, {total_expected} expected findings, all matched",
            fixtures.len()
        ))
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_is_lint_clean() {
        let (checked, findings) = lint_workspace(&repo_root());
        assert!(checked > 20, "walker found only {checked} files");
        assert!(
            findings.is_empty(),
            "workspace has lint findings:\n{}",
            findings
                .iter()
                .map(rules::Finding::render)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn fixtures_prove_every_rule_fires() {
        match self_test(&repo_root()) {
            Ok(report) => {
                // Every rule in the catalogue must be covered by at
                // least one fixture expectation.
                let dir = repo_root().join("crates/xtask/fixtures");
                let mut all = String::new();
                let mut files = Vec::new();
                collect_rs(&dir, &mut files);
                for f in files {
                    all.push_str(&std::fs::read_to_string(f).expect("fixture readable"));
                }
                for rule in rules::RULES {
                    assert!(
                        all.contains(&format!("expect: {rule}"))
                            || all.contains(&format!("{rule} ")),
                        "no fixture covers rule {rule}"
                    );
                }
                assert!(report.contains("all matched"));
            }
            Err(failures) => panic!("fixture self-test failed:\n{}", failures.join("\n")),
        }
    }
}
