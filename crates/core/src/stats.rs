//! Index and query instrumentation.
//!
//! Figures 9–11 of the paper compare node counts and index sizes between
//! the cracking index and a full bulk-loaded index, and Figure 3 counts on
//! the per-query work; these counters make those measurements direct
//! observations rather than estimates.

/// Monotonic counters maintained by the index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Binary splits performed (each BESTBINARYSPLIT application).
    pub splits_performed: u64,
    /// Tree nodes currently allocated (internal + leaf + unsplit).
    pub nodes_created: u64,
    /// Contour elements (leaves + unsplit partitions) touched by searches.
    pub elements_accessed: u64,
    /// Data points examined by searches (S₂ filter evaluations).
    pub points_examined: u64,
    /// Full S₁ distance evaluations (the expensive operation the index
    /// exists to avoid).
    pub s1_distance_evals: u64,
}

impl IndexStats {
    /// Resets the per-query counters (splits/nodes are cumulative
    /// structure counters and are preserved).
    pub fn reset_access_counters(&mut self) {
        self.elements_accessed = 0;
        self.points_examined = 0;
        self.s1_distance_evals = 0;
    }

    /// Adds `other`'s counters into `self` — merging per-shard counters
    /// into one engine-wide report.
    pub fn absorb(&mut self, other: &IndexStats) {
        self.splits_performed += other.splits_performed;
        self.nodes_created += other.nodes_created;
        self.elements_accessed += other.elements_accessed;
        self.points_examined += other.points_examined;
        self.s1_distance_evals += other.s1_distance_evals;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_preserves_structure_counters() {
        let mut s = IndexStats {
            splits_performed: 10,
            nodes_created: 21,
            elements_accessed: 5,
            points_examined: 100,
            s1_distance_evals: 40,
        };
        s.reset_access_counters();
        assert_eq!(s.splits_performed, 10);
        assert_eq!(s.nodes_created, 21);
        assert_eq!(s.elements_accessed, 0);
        assert_eq!(s.points_examined, 0);
        assert_eq!(s.s1_distance_evals, 0);
    }

    #[test]
    fn absorb_sums_every_field() {
        let mut a = IndexStats {
            splits_performed: 1,
            nodes_created: 2,
            elements_accessed: 3,
            points_examined: 4,
            s1_distance_evals: 5,
        };
        let b = IndexStats {
            splits_performed: 10,
            nodes_created: 20,
            elements_accessed: 30,
            points_examined: 40,
            s1_distance_evals: 50,
        };
        a.absorb(&b);
        assert_eq!(
            a,
            IndexStats {
                splits_performed: 11,
                nodes_created: 22,
                elements_accessed: 33,
                points_examined: 44,
                s1_distance_evals: 55,
            }
        );
    }
}
