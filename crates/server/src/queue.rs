//! The bounded admission queue and its monotonic counters, extracted so
//! the model-checking tests (`tests/model.rs`) can drive the exact same
//! types the serving loop uses — not a test-only replica.
//!
//! Both types are built on [`vkg_sync`] primitives: in ordinary builds
//! they compile down to `std::sync` with zero overhead; under
//! `--features model` every lock acquisition, condvar wait, and atomic
//! access becomes a scheduling point of the seeded model runtime, which
//! explores thread interleavings and checks the drain invariant
//! (`admitted == answered` once the queue is closed and drained) against
//! adversarial schedules.

use std::collections::VecDeque;

use vkg_sync::{AtomicU64, Condvar, Mutex, Ordering};

use crate::protocol::ServerCounters;

/// Outcome of [`JobQueue::try_push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The item was queued; a consumer is guaranteed to pop it.
    Admitted,
    /// The queue is at capacity — the caller must shed the work.
    QueueFull,
    /// The queue was closed — the caller must refuse the work.
    Closed,
}

struct QueueState<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: `Mutex<VecDeque>` + `Condvar`. Push never
/// blocks — a full queue is an explicit shed decision, not a wait.
///
/// The closing protocol preserves admitted work: [`JobQueue::close`]
/// stops new pushes, but [`JobQueue::pop`] keeps returning jobs until
/// the backlog is empty, and only then returns `None`. A consumer loop
/// of the form `while let Some(job) = queue.pop() { answer(job) }`
/// therefore answers every admitted job before exiting.
pub struct JobQueue<T> {
    inner: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue that admits at most `capacity` pending items.
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::with_name(
                QueueState {
                    jobs: VecDeque::with_capacity(capacity),
                    closed: false,
                },
                "job-queue",
            ),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Attempts to admit `item` without blocking.
    pub fn try_push(&self, item: T) -> Admission {
        let mut state = self.inner.lock();
        if state.closed {
            return Admission::Closed;
        }
        if state.jobs.len() >= self.capacity {
            return Admission::QueueFull;
        }
        state.jobs.push_back(item);
        drop(state);
        self.ready.notify_one();
        Admission::Admitted
    }

    /// Blocks for the next item; `None` once the queue is closed *and*
    /// drained, so consumers never abandon admitted work.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.inner.lock();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state);
        }
    }

    /// Blocks for the next item like [`JobQueue::pop`], then greedily
    /// drains up to `max - 1` more already-queued items **without
    /// waiting** — the group a batching consumer executes under one
    /// shard-lock round. `None` has exactly `pop`'s meaning (closed and
    /// drained), so `while let Some(batch) = queue.pop_batch(n)` also
    /// answers every admitted job before exiting. `max` is clamped to at
    /// least 1; the returned vector is never empty.
    pub fn pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let mut state = self.inner.lock();
        loop {
            if let Some(first) = state.jobs.pop_front() {
                let mut batch = vec![first];
                while batch.len() < max {
                    match state.jobs.pop_front() {
                        Some(job) => batch.push(job),
                        None => break,
                    }
                }
                return Some(batch);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state);
        }
    }

    /// Closes the queue: subsequent pushes are refused, and consumers
    /// drain the backlog then observe `None`.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.ready.notify_all();
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().jobs.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Monotonic admission-control counters.
///
/// `admitted` and `answered` carry the drain invariant — after a
/// graceful drain the two must be equal — so their increments publish
/// with `Release` and [`Counters::snapshot`] reads them with `Acquire`:
/// a snapshot that observes an `answered` increment is thereby ordered
/// after the work that produced it, even on a path (the inline `Stats`
/// handler) that never touches the queue mutex. The remaining counters
/// are pure statistics and stay `Relaxed`.
#[derive(Default)]
pub struct Counters {
    admitted: AtomicU64,
    answered: AtomicU64,
    shed: AtomicU64,
    deadline_expired: AtomicU64,
    drained: AtomicU64,
}

impl Counters {
    /// Records one admitted job (paired with the successful `try_push`).
    pub fn record_admitted(&self) {
        // Release: pairs with the Acquire load in `snapshot` so the
        // drain-invariant check observes admissions in order.
        self.admitted.fetch_add(1, Ordering::Release);
    }

    /// Records one answered job (every admitted job, exactly once).
    pub fn record_answered(&self) {
        // Release: pairs with the Acquire load in `snapshot` so the
        // drain-invariant check observes answers in order.
        self.answered.fetch_add(1, Ordering::Release);
    }

    /// Records one request shed because the queue was full.
    pub fn record_shed(&self) {
        // relaxed: pure statistic; no reader infers other state from it.
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one admitted job whose deadline expired while queued.
    pub fn record_deadline_expired(&self) {
        // relaxed: pure statistic; no reader infers other state from it.
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request refused because the server is draining.
    pub fn record_drained(&self) {
        // relaxed: pure statistic; no reader infers other state from it.
        self.drained.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time view of the counters, wire-ready.
    pub fn snapshot(&self) -> ServerCounters {
        ServerCounters {
            // Acquire: pairs with the Release increments so the
            // admitted/answered pair is never observed out of order
            // relative to the work it counts.
            admitted: self.admitted.load(Ordering::Acquire),
            answered: self.answered.load(Ordering::Acquire),
            // relaxed: pure statistics (see the recording sites).
            shed: self.shed.load(Ordering::Relaxed),
            // relaxed: pure statistics (see the recording sites).
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            // relaxed: pure statistics (see the recording sites).
            drained: self.drained.load(Ordering::Relaxed),
        }
    }
}

/// Per-shard admitted/answered counters, sized at server start to the
/// engine's shard count. A request that routes to a shard (any query or
/// write carrying a relation) is counted against it at admission and
/// again when answered, so operators can see *which* shard a hot
/// relation's traffic lands on. The same drain invariant as
/// [`Counters`] holds per shard: after a graceful drain,
/// `admitted == answered` in every slot.
pub struct ShardCounters {
    slots: Vec<ShardSlot>,
}

#[derive(Default)]
struct ShardSlot {
    admitted: AtomicU64,
    answered: AtomicU64,
}

impl ShardCounters {
    /// Counters for `shard_count` shards, all zero.
    pub fn new(shard_count: usize) -> Self {
        ShardCounters {
            slots: (0..shard_count.max(1))
                .map(|_| ShardSlot::default())
                .collect(),
        }
    }

    /// Number of shards tracked.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no shards are tracked (never, for a live server).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Records one admission routed to `shard`.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn record_admitted(&self, shard: usize) {
        // Release: pairs with the Acquire load in `snapshot`, mirroring
        // the global counters' drain-invariant ordering.
        // lint: allow(no-panic-on-request-path, shard comes from request_shard which bounds it by shard_count; the # Panics contract is the API)
        self.slots[shard].admitted.fetch_add(1, Ordering::Release);
    }

    /// Records one answer for a job routed to `shard`.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn record_answered(&self, shard: usize) {
        // Release: pairs with the Acquire load in `snapshot`, mirroring
        // the global counters' drain-invariant ordering.
        // lint: allow(no-panic-on-request-path, shard comes from request_shard which bounds it by shard_count; the # Panics contract is the API)
        self.slots[shard].answered.fetch_add(1, Ordering::Release);
    }

    /// A point-in-time `(admitted, answered)` pair per shard.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        self.slots
            .iter()
            .map(|s| {
                (
                    s.admitted.load(Ordering::Acquire),
                    s.answered.load(Ordering::Acquire),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;

    #[test]
    fn push_pop_roundtrip() {
        let q = JobQueue::new(2);
        assert_eq!(q.try_push(1), Admission::Admitted);
        assert_eq!(q.try_push(2), Admission::Admitted);
        assert_eq!(q.try_push(3), Admission::QueueFull);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.close();
        assert_eq!(q.try_push(4), Admission::Closed);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_batch_drains_greedily_without_waiting() {
        let q = JobQueue::new(8);
        for i in 0..5 {
            q.try_push(i);
        }
        // Takes at most `max`, leaves the rest queued.
        assert_eq!(q.pop_batch(3), Some(vec![0, 1, 2]));
        // Takes what's there without blocking for a full batch.
        assert_eq!(q.pop_batch(3), Some(vec![3, 4]));
        // `max` of zero clamps to one item.
        q.try_push(9);
        assert_eq!(q.pop_batch(0), Some(vec![9]));
        // Closed + drained ends the consumer loop, like `pop`.
        q.close();
        assert_eq!(q.pop_batch(4), None);
    }

    #[test]
    fn close_drains_backlog_before_none() {
        let q = JobQueue::new(8);
        q.try_push(10);
        q.try_push(11);
        q.close();
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q = Arc::new(JobQueue::<u32>::new(1));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().expect("consumer"), None);
    }

    #[test]
    fn counters_snapshot_reflects_records() {
        let c = Counters::default();
        c.record_admitted();
        c.record_admitted();
        c.record_answered();
        c.record_shed();
        c.record_deadline_expired();
        c.record_drained();
        let s = c.snapshot();
        assert_eq!(
            (
                s.admitted,
                s.answered,
                s.shed,
                s.deadline_expired,
                s.drained
            ),
            (2, 1, 1, 1, 1)
        );
    }

    #[test]
    fn shard_counters_track_per_shard() {
        let c = ShardCounters::new(3);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        c.record_admitted(0);
        c.record_admitted(2);
        c.record_admitted(2);
        c.record_answered(2);
        assert_eq!(c.snapshot(), vec![(1, 0), (0, 0), (2, 1)]);
        // Zero shards clamp to one slot (a live engine has ≥ 1 shard).
        assert_eq!(ShardCounters::new(0).len(), 1);
    }
}
