//! Knowledge-graph completion over the Freebase-like dataset: the paper's
//! §VI masked-edge methodology.
//!
//! Masks a handful of true edges before training, then checks whether the
//! masked tails come back in the predictive top-10 ("we randomly mask 5
//! edges … and find that they are typically in the top-10 list, but not
//! necessarily top-5"). Also demonstrates head-direction queries — the
//! paper's "Rapper → Snoop Dogg" example shape — and that one index
//! serves *all* relationship types (what H2-ALSH cannot do).
//!
//! Run with: `cargo run --release --example kg_completion`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vkg::prelude::*;

fn main() {
    let cfg = FreebaseConfig {
        entities: 1_500,
        relation_types: 30,
        type_clusters: 6,
        edges: 9_000,
        ..FreebaseConfig::default()
    };
    let mut ds = freebase_like(&cfg);
    println!("dataset: {} — {}", ds.name, ds.graph.stats());

    // --- Mask 5 random edges before training ---------------------------
    let mut rng = StdRng::seed_from_u64(2020);
    let mut masked = Vec::new();
    while masked.len() < 5 {
        let t = ds.graph.triples()[rng.gen_range(0..ds.graph.num_edges())];
        if ds.graph.remove_triple(t.head, t.relation, t.tail) {
            masked.push(t);
        }
    }
    println!("masked {} edges before training", masked.len());

    let (embeddings, stats) = TransE::new(TransEConfig {
        dim: 48,
        epochs: 40,
        ..TransEConfig::default()
    })
    .train(&ds.graph);
    println!(
        "TransE: d={} final loss {:.4}",
        embeddings.dim(),
        stats.final_loss().unwrap_or(0.0)
    );

    // Quick SGD TransE leaves moderate distance contrast, so keep the
    // Algorithm 3 ball tight (ε inflates the k-th candidate radius).
    let vkg = VirtualKnowledgeGraph::assemble(
        ds.graph.clone(),
        ds.attributes.clone(),
        embeddings,
        VkgConfig {
            epsilon: 0.5,
            ..VkgConfig::default()
        },
    );

    // --- Are the masked edges recovered in the top-10? -----------------
    println!("\nmasked-edge recovery (tail direction, k = 10):");
    let mut recovered = 0;
    for t in &masked {
        let r = vkg
            .top_k(t.head, t.relation, Direction::Tails, 10)
            .expect("valid query");
        let rank = r.predictions.iter().position(|p| p.id == t.tail.0);
        match rank {
            Some(pos) => {
                recovered += 1;
                println!(
                    "  ({}, {}, {})  recovered at rank {}",
                    ds.graph.entity_name(t.head).unwrap(),
                    ds.graph.relation_name(t.relation).unwrap(),
                    ds.graph.entity_name(t.tail).unwrap(),
                    pos + 1
                );
            }
            None => println!(
                "  ({}, {}, {})  not in top-10 (expected occasionally — §VI)",
                ds.graph.entity_name(t.head).unwrap(),
                ds.graph.relation_name(t.relation).unwrap(),
                ds.graph.entity_name(t.tail).unwrap(),
            ),
        }
    }
    println!(
        "recovered {recovered}/{} masked edges in the top-10",
        masked.len()
    );

    // --- Head queries across many relation types -----------------------
    // The "(Rapper, /people/person/profession) → top heads" query shape.
    println!("\nhead-direction queries across distinct relationship types:");
    let mut used_relations = std::collections::HashSet::new();
    let mut shown = 0;
    for t in ds.graph.triples() {
        if shown >= 4 || !used_relations.insert(t.relation) {
            continue;
        }
        shown += 1;
        let r = vkg
            .top_k(t.tail, t.relation, Direction::Heads, 3)
            .expect("valid query");
        let heads: Vec<&str> = r
            .predictions
            .iter()
            .map(|p| ds.graph.entity_name(EntityId(p.id)).unwrap())
            .collect();
        println!(
            "  ({:8} ← {:18}): {:?}  success prob ≥ {:.3}",
            ds.graph.entity_name(t.tail).unwrap(),
            ds.graph.relation_name(t.relation).unwrap(),
            heads,
            r.guarantee.success_probability
        );
    }

    // --- MAX popularity aggregate (Fig. 15's query) ---------------------
    let t0 = &masked[0];
    let agg = vkg
        .aggregate(
            t0.head,
            t0.relation,
            Direction::Tails,
            &AggregateSpec::of(AggregateKind::Max, "popularity", 0.05).with_sample(20),
        )
        .expect("valid query");
    println!(
        "\nexpected MAX popularity among predicted ({}, {}) tails: {:.1} (ball {}, accessed {})",
        ds.graph.entity_name(t0.head).unwrap(),
        ds.graph.relation_name(t0.relation).unwrap(),
        agg.estimate,
        agg.ball_size,
        agg.accessed
    );

    println!(
        "\none cracking index served {} relationship types; nodes {}, splits {}",
        ds.graph.num_relations(),
        vkg.index_node_count(),
        vkg.index_stats().splits_performed
    );
}
