//! The [`Strategy`] trait and the built-in value generators.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating random values of an output type.
///
/// Unlike the real crate there is no value tree and no shrinking:
/// `generate` draws one value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// String literals act as regex strategies (subset; see
/// [`crate::string`]).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
