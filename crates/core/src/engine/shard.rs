//! Relation-partitioned engine shards.
//!
//! The paper cracks its R-tree *per query relationship*: a top-k query
//! ⟨e, r⟩ only ever probes and reshapes the structure serving r. The
//! [`ShardedEngine`] turns that observation into a concurrency
//! architecture: relation ids are hashed onto a fixed set of shards
//! ([`shard_of_relation`], the router), each shard owning its own
//! [`IndexState`] (a full cracking R-tree over the snapshot's projected
//! points), its own `vkg-sync` lock, and its own epoch counter. A query
//! for ⟨e, r⟩ takes only r's shard lock, so a burst of cracking or
//! `AddFactDynamic` traffic on one hot relation never stalls queries on
//! any other relation; multi-relation aggregates fan out across shards
//! and merge per Theorem 4 (see `VirtualKnowledgeGraph::aggregate_multi`).
//!
//! **Answers are shard-count independent.** Every shard holds the full
//! projected point set, and a shared **crack log** keeps every shard's
//! tree canonical: Algorithm 3 *seeds* from the contour element
//! containing the query (line 2), so tree shape is not purely a
//! performance property — two trees cracked by different query subsets
//! can seed different initial balls and miss different candidates.
//! Every crack a query performs is therefore journaled and appended to
//! an ordered log, and a shard replays the log's pending entries
//! (under its own lock, lazily, just before serving) so its tree has
//! seen exactly the crack sequence the old single-tree engine would
//! have. Cracking is deterministic, so all shard counts produce the
//! same contour at every query — and the same answers. Shard count 1
//! skips journaling entirely and reproduces the old single-lock engine
//! bit for bit.
//!
//! **Lock order.** All code acquires shard locks in ascending index
//! order, and the facade's `published` lock only after shard locks;
//! the crack-log mutex is a leaf — held only for a copy or an append,
//! never while acquiring anything else:
//!
//! ```text
//! shard 0 < shard 1 < … < shard n−1 < {vkg.published, vkg.cracklog}
//! ```
//!
//! Queries hold exactly one shard lock. Dynamic writes hold *all* of
//! them (ascending, via [`ShardedEngine::lock_all`]), because an update
//! must splice the new point into every shard's tree before the
//! snapshot describing it publishes. Publication — and the shard-epoch
//! bump — therefore happens only while every shard lock is held, which
//! is exactly what lets a reader holding any single shard lock treat
//! the global epoch *and* its shard's epoch as pinned for the duration.

use vkg_kg::RelationId;
use vkg_sync::pool::{Pool, PoolStats};
use vkg_sync::{Arc, AtomicU64, Mutex, Ordering, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::config::VkgConfig;
use crate::geometry::{Mbr, PointSet};
use crate::index::CrackingIndex;
use crate::snapshot::VkgSnapshot;
use crate::stats::IndexStats;

use super::{Accuracy, EngineStats, IndexState, QueryEngine};

/// Diagnostic names for the shard locks (the model runtime reports lock
/// names in violations; `RwLock::with_name` needs `&'static str`).
/// Engines wider than the table share the last name — names never
/// affect lock identity or the checker's ordering analysis.
static SHARD_LOCK_NAMES: [&str; 32] = [
    "vkg.shard00",
    "vkg.shard01",
    "vkg.shard02",
    "vkg.shard03",
    "vkg.shard04",
    "vkg.shard05",
    "vkg.shard06",
    "vkg.shard07",
    "vkg.shard08",
    "vkg.shard09",
    "vkg.shard10",
    "vkg.shard11",
    "vkg.shard12",
    "vkg.shard13",
    "vkg.shard14",
    "vkg.shard15",
    "vkg.shard16",
    "vkg.shard17",
    "vkg.shard18",
    "vkg.shard19",
    "vkg.shard20",
    "vkg.shard21",
    "vkg.shard22",
    "vkg.shard23",
    "vkg.shard24",
    "vkg.shard25",
    "vkg.shard26",
    "vkg.shard27",
    "vkg.shard28",
    "vkg.shard29",
    "vkg.shard30",
    "vkg.shard31",
];

fn shard_lock_name(i: usize) -> &'static str {
    SHARD_LOCK_NAMES[i.min(SHARD_LOCK_NAMES.len() - 1)]
}

/// The router: maps a relation id to its shard. A Fibonacci
/// multiplicative hash spreads consecutive relation ids (dense interned
/// ids are the common case) evenly across any shard count.
pub fn shard_of_relation(relation: RelationId, shard_count: usize) -> usize {
    let mixed = (u64::from(relation.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
    (mixed as usize) % shard_count.max(1)
}

/// One shard: a full cracking index behind its own lock, plus the epoch
/// counter publications bump when they mutate this shard's tree.
#[derive(Debug)]
struct Shard {
    state: RwLock<IndexState>,
    /// Written only under *all* shard locks (see the module docs) and
    /// read either under a shard lock (pinned) or lock-free (server
    /// stats, a monotone snapshot); Acquire/Release keeps the lock-free
    /// reads well-ordered against the index mutations they describe.
    epoch: AtomicU64,
}

/// The shared crack log: every crack region any shard performed, in
/// append order, plus each shard's replay cursor. Compacted whenever
/// every shard has caught up, so it only holds the lag between the
/// most- and least-recently-used shards.
#[derive(Debug, Default)]
struct CrackLog {
    entries: Vec<Mbr>,
    /// Per shard: how many log entries its tree has applied.
    applied: Vec<usize>,
}

impl CrackLog {
    fn compact_if_converged(&mut self) {
        if self.applied.iter().all(|&a| a == self.entries.len()) {
            self.entries.clear();
            for a in &mut self.applied {
                *a = 0;
            }
        }
    }
}

/// A relation-partitioned set of cracking indices with per-shard locks
/// and epochs. See the module docs for the locking discipline.
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Shard>,
    crack_log: Mutex<CrackLog>,
    name: &'static str,
    accuracy: Accuracy,
    /// Dispatch statistics shared by every shard's kernel pool (and the
    /// build-time projection pool), so observability can report how
    /// often kernels ran serial vs. parallel.
    pool_stats: Arc<PoolStats>,
    /// Crack regions appended to the shared log (across all shards).
    cracks_published: AtomicU64,
    /// Log entries replayed onto lagging shards' trees.
    cracks_replayed: AtomicU64,
}

impl ShardedEngine {
    /// Online-cracking shards over the snapshot's projected points: the
    /// point set is projected once and cloned per shard, each shard
    /// starting as a root-only tree exactly as `IndexState::cracking`
    /// builds it.
    pub fn cracking(snap: &VkgSnapshot) -> Self {
        Self::build(snap, false)
    }

    /// Bulk-loaded shards (the BULKLOADCHUNK baseline of §VI, sharded).
    pub fn bulk_loaded(snap: &VkgSnapshot) -> Self {
        Self::build(snap, true)
    }

    fn build(snap: &VkgSnapshot, bulk: bool) -> Self {
        let cfg = snap.config();
        let count = cfg.shards.max(1);
        let pool_stats = Arc::new(PoolStats::new());
        let pool = Pool::new(cfg.threads).with_stats(pool_stats.clone());
        let points = snap.project_points_pooled(&pool);
        // Crack-log replication only matters with siblings to keep in
        // step; one shard skips journaling and runs the old exact path.
        let journal = count > 1;
        let mut shards = Vec::with_capacity(count);
        for i in 0..count - 1 {
            shards.push(make_shard(
                points.clone(),
                cfg,
                bulk,
                i,
                journal,
                &pool_stats,
            ));
        }
        shards.push(make_shard(
            points,
            cfg,
            bulk,
            count - 1,
            journal,
            &pool_stats,
        ));
        Self {
            shards,
            crack_log: Mutex::with_name(
                CrackLog {
                    entries: Vec::new(),
                    applied: vec![0; count],
                },
                "vkg.cracklog",
            ),
            name: if bulk { "bulk-load R-tree" } else { "cracking" },
            accuracy: Accuracy::Approximate { min_overlap: 0.5 },
            pool_stats,
            cracks_published: AtomicU64::new(0),
            cracks_replayed: AtomicU64::new(0),
        }
    }

    /// Dispatch statistics for the engine's kernel pools (shared by
    /// every shard): serial vs. parallel runs and chunks claimed.
    pub fn pool_stats(&self) -> &Arc<PoolStats> {
        &self.pool_stats
    }

    /// Crack regions this engine has appended to the shared crack log.
    /// Zero for one-shard engines (nothing journals).
    pub fn cracks_published(&self) -> u64 {
        // relaxed: pure statistic; no reader infers other state from it.
        self.cracks_published.load(Ordering::Relaxed)
    }

    /// Log entries replayed onto lagging shards (each pending entry
    /// counts once per shard that replays it).
    pub fn cracks_replayed(&self) -> u64 {
        // relaxed: pure statistic; no reader infers other state from it.
        self.cracks_replayed.load(Ordering::Relaxed)
    }

    /// Number of shards (the configured `VkgConfig::shards`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard serving `relation`'s queries.
    pub fn shard_of(&self, relation: RelationId) -> usize {
        shard_of_relation(relation, self.shards.len())
    }

    /// Shared read access to one shard's index state.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn read_shard(&self, i: usize) -> RwLockReadGuard<'_, IndexState> {
        self.shards[i].state.read()
    }

    /// Exclusive access to one shard's index state. Callers holding
    /// several shard guards at once must acquire them in ascending
    /// index order (use [`ShardedEngine::lock_all`]).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn write_shard(&self, i: usize) -> RwLockWriteGuard<'_, IndexState> {
        // lint: allow(no-panic-on-request-path, i comes from shard_of/the router, bounded by shard count; the # Panics contract is the API)
        self.shards[i].state.write()
    }

    /// One shard's epoch: the number of publications that mutated this
    /// shard's index. Exact while the shard's lock is held; otherwise a
    /// monotone snapshot.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn shard_epoch(&self, i: usize) -> u64 {
        // lint: allow(no-panic-on-request-path, i comes from shard_of/the router, bounded by shard count; the # Panics contract is the API)
        self.shards[i].epoch.load(Ordering::Acquire)
    }

    /// Every shard's epoch, in shard order.
    pub fn shard_epochs(&self) -> Vec<u64> {
        (0..self.shards.len())
            .map(|i| self.shard_epoch(i))
            .collect()
    }

    /// Bumps every shard's epoch by one. Callers must hold all shard
    /// locks (a [`ShardSetGuard`]): epochs only advance together with
    /// the publication that mutated the shard trees.
    pub fn bump_all_epochs(&self) {
        for s in &self.shards {
            s.epoch.fetch_add(1, Ordering::Release);
        }
    }

    /// Replays onto shard `i`'s tree every crack sibling shards have
    /// logged since this shard last synced, bringing its contour up to
    /// the canonical crack sequence. The caller must hold shard `i`'s
    /// write lock and pass the guarded state. No-op for a one-shard
    /// engine (nothing journals).
    pub fn sync_shard(&self, i: usize, state: &mut IndexState) {
        if self.shards.len() == 1 {
            return;
        }
        let pending: Vec<Mbr> = {
            let mut log = self.crack_log.lock();
            // lint: allow(no-panic-on-request-path, applied has one cursor per shard and each cursor is <= entries.len() by construction)
            let from = log.applied[i];
            let pending = log.entries[from..].to_vec();
            // lint: allow(no-panic-on-request-path, applied has one cursor per shard; i is a valid shard index from the caller)
            log.applied[i] = log.entries.len();
            log.compact_if_converged();
            pending
        };
        if !pending.is_empty() {
            // relaxed: pure statistic; no reader infers other state from it.
            self.cracks_replayed
                .fetch_add(pending.len() as u64, Ordering::Relaxed);
        }
        for region in &pending {
            state.index_mut().replay_crack(region);
        }
    }

    /// Drains shard `i`'s crack journal into the shared log so sibling
    /// shards replay the same cracks before they next serve. The caller
    /// must hold shard `i`'s write lock; call after any operation that
    /// may have cracked the tree (every query can).
    pub fn publish_cracks(&self, i: usize, state: &mut IndexState) {
        if self.shards.len() == 1 {
            return;
        }
        let fresh = state.index_mut().drain_crack_journal();
        if fresh.is_empty() {
            return;
        }
        // relaxed: pure statistic; no reader infers other state from it.
        self.cracks_published
            .fetch_add(fresh.len() as u64, Ordering::Relaxed);
        let mut log = self.crack_log.lock();
        // lint: allow(no-panic-on-request-path, applied has one cursor per shard; i is a valid shard index from the caller)
        let at_tail = log.applied[i] == log.entries.len();
        log.entries.extend(fresh);
        if at_tail {
            // Nothing foreign arrived since this shard synced, so its
            // own cracks are the log tail and are already applied to
            // its tree — advance past them.
            // lint: allow(no-panic-on-request-path, applied has one cursor per shard; i is a valid shard index from the caller)
            log.applied[i] = log.entries.len();
            log.compact_if_converged();
        }
        // Otherwise the cursor stays put and this shard later replays
        // its own cracks after the interleaved foreign ones: cracking
        // is deterministic and re-cracking an already-refined region
        // is a cheap pass over elements that no longer straddle it.
    }

    /// Locks every shard in ascending index order — the write-side
    /// entry point for dynamic updates, engine-wide inspection, and
    /// drain quiescing. Every shard is synced to the crack log before
    /// the guard returns, so the holder sees (and mutates) canonical
    /// trees; journals accumulated while the guard is held publish on
    /// drop.
    pub fn lock_all(&self) -> ShardSetGuard<'_> {
        let mut guards: Vec<RwLockWriteGuard<'_, IndexState>> =
            self.shards.iter().map(|s| s.state.write()).collect();
        for (i, g) in guards.iter_mut().enumerate() {
            self.sync_shard(i, &mut *g);
        }
        ShardSetGuard {
            engine: self,
            guards,
        }
    }

    /// Engine-wide statistics, merged across shards (each shard is read
    /// in ascending order; the totals are a consistent-per-shard sum,
    /// not one atomic cross-shard cut).
    pub fn merged_stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for i in 0..self.shards.len() {
            let guard = self.read_shard(i);
            let s = QueryEngine::stats(&*guard);
            total.nodes += s.nodes;
            total.bytes += s.bytes;
            total.counters.absorb(&s.counters);
        }
        total
    }

    /// Merged monotonic + access counters (the [`IndexStats`] half of
    /// [`ShardedEngine::merged_stats`]).
    pub fn merged_index_stats(&self) -> IndexStats {
        self.merged_stats().counters
    }

    /// Total index nodes across shards.
    pub fn node_count(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.read_shard(i).index().node_count())
            .sum()
    }

    /// Total approximate index bytes across shards.
    pub fn index_bytes(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.read_shard(i).index().index_bytes())
            .sum()
    }
}

fn make_shard(
    points: PointSet,
    cfg: &VkgConfig,
    bulk: bool,
    i: usize,
    journal: bool,
    stats: &Arc<PoolStats>,
) -> Shard {
    let pool = Pool::new(cfg.threads).with_stats(stats.clone());
    let state = if bulk {
        let mut index = CrackingIndex::bulk_load_with_pool(
            points,
            cfg.leaf_capacity,
            cfg.fanout,
            cfg.beta,
            pool,
        );
        if journal {
            index.enable_crack_journal();
        }
        IndexState::from_index(index, "bulk-load R-tree")
    } else {
        let mut index = CrackingIndex::with_pool(
            points,
            cfg.leaf_capacity,
            cfg.fanout,
            cfg.beta,
            cfg.split_strategy,
            pool,
        );
        index.set_query_aware_cost(cfg.query_aware_cost);
        if journal {
            index.enable_crack_journal();
        }
        IndexState::from_index(index, "cracking")
    };
    Shard {
        state: RwLock::with_name(state, shard_lock_name(i)),
        epoch: AtomicU64::new(0),
    }
}

/// Write guards over **every** shard, acquired in ascending order by
/// [`ShardedEngine::lock_all`]. While it lives, no query can run and no
/// publication can land, so the holder sees (and may mutate) a frozen
/// engine. Dropping the guard publishes any cracks performed while it
/// was held to the shared crack log.
pub struct ShardSetGuard<'a> {
    engine: &'a ShardedEngine,
    guards: Vec<RwLockWriteGuard<'a, IndexState>>,
}

impl Drop for ShardSetGuard<'_> {
    fn drop(&mut self) {
        for (i, g) in self.guards.iter_mut().enumerate() {
            self.engine.publish_cracks(i, &mut *g);
        }
    }
}

impl<'a> ShardSetGuard<'a> {
    /// Number of shards held.
    pub fn len(&self) -> usize {
        self.guards.len()
    }

    /// Whether the guard set is empty (never, for a live engine).
    pub fn is_empty(&self) -> bool {
        self.guards.is_empty()
    }

    /// One shard's state.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn shard(&self, i: usize) -> &IndexState {
        &self.guards[i]
    }

    /// Exclusive access to one shard's state.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn shard_mut(&mut self, i: usize) -> &mut IndexState {
        &mut self.guards[i]
    }

    /// Iterates over every shard's state mutably, in shard order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut IndexState> + use<'a, '_> {
        self.guards.iter_mut().map(|g| &mut **g)
    }

    /// Statistics merged across the held shards (an atomic cut — every
    /// lock is held).
    pub fn merged_stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for g in &self.guards {
            let s = QueryEngine::stats(&**g);
            total.nodes += s.nodes;
            total.bytes += s.bytes;
            total.counters.absorb(&s.counters);
        }
        total
    }

    /// The engine's accuracy contract (uniform across shards).
    pub fn accuracy(&self) -> Accuracy {
        self.guards
            .first()
            .map(|g| QueryEngine::accuracy(&**g))
            .unwrap_or(Accuracy::Exact)
    }
}

/// The sharded engine is itself a [`QueryEngine`]: calls route to the
/// owning shard by relation, so the experiment harness and benches get
/// a shard-count axis with no special-casing. (`knn_in_s2` has no
/// relation; it routes to shard 0 by convention.) Locks are still taken
/// per call — `&mut self` callers pay only uncontended lock overhead.
impl QueryEngine for ShardedEngine {
    fn name(&self) -> &str {
        self.name
    }

    fn accuracy(&self) -> Accuracy {
        self.accuracy
    }

    fn top_k_filtered(
        &mut self,
        snap: &VkgSnapshot,
        entity: vkg_kg::EntityId,
        relation: RelationId,
        direction: crate::snapshot::Direction,
        k: usize,
        filter: &dyn Fn(vkg_kg::EntityId) -> bool,
    ) -> crate::error::VkgResult<crate::query::topk::TopKResult> {
        let s = self.shard_of(relation);
        let mut guard = self.write_shard(s);
        self.sync_shard(s, &mut guard);
        let r = guard.top_k_filtered(snap, entity, relation, direction, k, filter);
        self.publish_cracks(s, &mut guard);
        r
    }

    fn knn_in_s2(
        &mut self,
        snap: &VkgSnapshot,
        q_s1: &[f64],
        k: usize,
    ) -> crate::error::VkgResult<Vec<super::Neighbor>> {
        let mut guard = self.write_shard(0);
        self.sync_shard(0, &mut guard);
        let r = guard.knn_in_s2(snap, q_s1, k);
        self.publish_cracks(0, &mut guard);
        r
    }

    fn aggregate(
        &mut self,
        snap: &VkgSnapshot,
        entity: vkg_kg::EntityId,
        relation: RelationId,
        direction: crate::snapshot::Direction,
        spec: &crate::query::aggregate::AggregateSpec,
    ) -> crate::error::VkgResult<crate::query::aggregate::AggregateResult> {
        let s = self.shard_of(relation);
        let mut guard = self.write_shard(s);
        self.sync_shard(s, &mut guard);
        let r = guard.aggregate(snap, entity, relation, direction, spec);
        self.publish_cracks(s, &mut guard);
        r
    }

    fn stats(&self) -> EngineStats {
        self.merged_stats()
    }

    fn reset_access_counters(&mut self) {
        for i in 0..self.shards.len() {
            self.write_shard(i).reset_access_counters();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vkg_embed::EmbeddingStore;
    use vkg_kg::{AttributeStore, EntityId, KnowledgeGraph};

    use crate::snapshot::Direction;

    fn snap(shards: usize) -> VkgSnapshot {
        let mut g = KnowledgeGraph::new();
        let likes = g.add_relation("likes");
        let _also = g.add_relation("also");
        let a = g.add_entity("a");
        let b = g.add_entity("b");
        let _c = g.add_entity("c");
        g.add_triple(a, likes, b).unwrap();
        let store = EmbeddingStore::from_raw(
            2,
            vec![0.0, 0.0, 1.0, 0.0, 1.2, 0.0],
            vec![1.0, 0.0, 0.5, 0.5],
        );
        let cfg = VkgConfig {
            alpha: 2,
            shards,
            // Tiny leaves so even this 3-point world actually cracks —
            // the crack-log tests need trees that change shape.
            leaf_capacity: 2,
            ..VkgConfig::default()
        };
        VkgSnapshot::new(g, AttributeStore::new(), store, cfg).unwrap()
    }

    #[test]
    fn router_is_deterministic_and_in_range() {
        for count in [1, 2, 3, 7, 32, 33] {
            for r in 0..200 {
                let s = shard_of_relation(RelationId(r), count);
                assert!(s < count);
                assert_eq!(s, shard_of_relation(RelationId(r), count));
            }
        }
        // One shard means everything routes to it.
        assert_eq!(shard_of_relation(RelationId(u32::MAX), 1), 0);
    }

    #[test]
    fn router_spreads_dense_relation_ids() {
        // Interned relation ids are dense from 0; the router must not
        // pile them onto few shards.
        let count = 4;
        let mut hist = vec![0usize; count];
        for r in 0..64 {
            hist[shard_of_relation(RelationId(r), count)] += 1;
        }
        assert!(
            hist.iter().all(|&h| h >= 64 / count / 2),
            "unbalanced router: {hist:?}"
        );
    }

    #[test]
    fn lock_names_clamp_past_the_table() {
        assert_eq!(shard_lock_name(0), "vkg.shard00");
        assert_eq!(shard_lock_name(31), "vkg.shard31");
        assert_eq!(shard_lock_name(500), "vkg.shard31");
    }

    #[test]
    fn every_shard_answers_identically() {
        // Shards differ only in which queries crack them: the same
        // query through each shard returns the same ids.
        let s = snap(3);
        let engine = ShardedEngine::cracking(&s);
        assert_eq!(engine.shard_count(), 3);
        let mut answers = Vec::new();
        for i in 0..engine.shard_count() {
            let r = engine
                .write_shard(i)
                .top_k(&s, EntityId(0), RelationId(0), Direction::Tails, 2)
                .unwrap();
            answers.push(r.predictions.iter().map(|p| p.id).collect::<Vec<_>>());
        }
        assert_eq!(answers[0], answers[1]);
        assert_eq!(answers[1], answers[2]);
    }

    #[test]
    fn routed_queries_crack_only_their_shard() {
        let s = snap(2);
        let mut engine = ShardedEngine::cracking(&s);
        let likes = RelationId(0);
        let owner = engine.shard_of(likes);
        let before: Vec<u64> = (0..2)
            .map(|i| engine.read_shard(i).index().stats().s1_distance_evals)
            .collect();
        let _ = engine
            .top_k(&s, EntityId(0), likes, Direction::Tails, 2)
            .unwrap();
        for (i, &evals_before) in before.iter().enumerate() {
            let after = engine.read_shard(i).index().stats().s1_distance_evals;
            if i == owner {
                assert!(after > evals_before, "owning shard must do the work");
            } else {
                assert_eq!(after, evals_before, "other shard untouched");
            }
        }
    }

    #[test]
    fn epochs_bump_together_under_all_locks() {
        let s = snap(2);
        let engine = ShardedEngine::cracking(&s);
        assert_eq!(engine.shard_epochs(), vec![0, 0]);
        {
            let _all = engine.lock_all();
            engine.bump_all_epochs();
        }
        assert_eq!(engine.shard_epochs(), vec![1, 1]);
        assert_eq!(engine.shard_epoch(0), 1);
    }

    #[test]
    fn merged_stats_sum_across_shards() {
        let s = snap(2);
        let mut engine = ShardedEngine::cracking(&s);
        let _ = engine
            .top_k(&s, EntityId(0), RelationId(0), Direction::Tails, 2)
            .unwrap();
        let merged = engine.merged_stats();
        // Two root-only trees (possibly cracked by the query).
        assert!(merged.nodes >= 2);
        assert!(merged.bytes > 0);
        assert!(merged.counters.s1_distance_evals > 0);
        assert_eq!(engine.node_count(), merged.nodes);
        assert_eq!(engine.index_bytes(), merged.bytes);
        let mut all = engine.lock_all();
        assert_eq!(all.merged_stats(), merged);
        assert_eq!(all.len(), 2);
        assert!(!all.is_empty());
        assert_eq!(all.accuracy(), Accuracy::Approximate { min_overlap: 0.5 });
        let n0 = all.shard(0).index().node_count();
        assert_eq!(all.shard_mut(0).index_mut().node_count(), n0);
        assert_eq!(all.iter_mut().count(), 2);
    }

    /// A world big enough that queries actually crack: 24 entities on a
    /// spread-out 2-d grid, two relations, tiny leaves.
    fn snap_many(shards: usize) -> VkgSnapshot {
        let mut g = KnowledgeGraph::new();
        let likes = g.add_relation("likes");
        let _also = g.add_relation("also");
        let n = 24;
        for i in 0..n {
            g.add_entity(&format!("e{i}"));
        }
        g.add_triple(EntityId(0), likes, EntityId(1)).unwrap();
        let mut coords = Vec::with_capacity(n as usize * 2);
        for i in 0..n {
            // Deterministic scatter, no two points colinear on an axis.
            coords.push((i as f64 * 1.37).sin() * 10.0);
            coords.push((i as f64 * 2.11).cos() * 10.0);
        }
        let store = EmbeddingStore::from_raw(2, coords, vec![1.0, 0.0, 0.5, 0.5]);
        let cfg = VkgConfig {
            alpha: 2,
            shards,
            leaf_capacity: 2,
            // Tight ball: the default epsilon (3.0) inflates the crack
            // region past the whole 24-point cloud, and the §IV-C stop
            // condition then keeps the root unsplit forever.
            epsilon: 0.1,
            ..VkgConfig::default()
        };
        VkgSnapshot::new(g, AttributeStore::new(), store, cfg).unwrap()
    }

    #[test]
    fn crack_log_keeps_sibling_trees_canonical() {
        let one = snap_many(1);
        let two = snap_many(2);
        let mut e1 = ShardedEngine::cracking(&one);
        let mut e2 = ShardedEngine::cracking(&two);
        // Interleave queries over relations owned by different shards;
        // answers must match the single-tree engine query for query.
        assert_ne!(e2.shard_of(RelationId(0)), e2.shard_of(RelationId(1)));
        for _ in 0..3 {
            for r in [RelationId(0), RelationId(1)] {
                let a = e1.top_k(&one, EntityId(0), r, Direction::Tails, 2).unwrap();
                let b = e2.top_k(&two, EntityId(0), r, Direction::Tails, 2).unwrap();
                assert_eq!(
                    a.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
                    b.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
                );
            }
        }
        // After a full sync (lock_all replays the log on every shard),
        // each sibling tree is structurally identical to the single
        // tree that saw the whole crack sequence directly.
        drop(e2.lock_all());
        // The crack traffic is observable: siblings published and
        // replayed entries, while the one-shard engine journaled nothing.
        assert!(e2.cracks_published() > 0, "siblings must journal cracks");
        assert!(e2.cracks_replayed() > 0, "laggards must replay cracks");
        assert_eq!(e1.cracks_published(), 0);
        assert_eq!(e1.cracks_replayed(), 0);
        let reference = e1.read_shard(0).index().node_count();
        assert!(reference > 1, "fixture must actually crack");
        for i in 0..2 {
            assert_eq!(
                e2.read_shard(i).index().node_count(),
                reference,
                "shard {i} diverged from the canonical tree"
            );
        }
    }

    #[test]
    fn bulk_loaded_shards_match_single_shard_answers() {
        let one = snap(1);
        let many = snap(7);
        let mut e1 = ShardedEngine::bulk_loaded(&one);
        let mut e7 = ShardedEngine::bulk_loaded(&many);
        let a = e1
            .top_k(&one, EntityId(0), RelationId(0), Direction::Tails, 2)
            .unwrap();
        let b = e7
            .top_k(&many, EntityId(0), RelationId(0), Direction::Tails, 2)
            .unwrap();
        assert_eq!(
            a.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
            b.predictions.iter().map(|p| p.id).collect::<Vec<_>>()
        );
        assert_eq!(e1.name(), "bulk-load R-tree");
        e7.reset_access_counters();
        assert_eq!(QueryEngine::stats(&e7).counters.s1_distance_evals, 0);
    }
}
