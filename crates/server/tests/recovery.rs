//! Durability + self-healing tests against live loopback servers: the
//! idempotent-write regression (a duplicated `AddFactDynamic` frame
//! never double-applies), and the headline scenario — a retry-enabled
//! client survives a forced server restart mid-load with zero duplicate
//! applications, verified by epoch accounting and the `server.wal.*` /
//! `client.retry.*` counter reconciliation.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use vkg_core::vkg::VirtualKnowledgeGraph;
use vkg_core::VkgConfig;
use vkg_embed::{TransE, TransEConfig};
use vkg_kg::datasets::{movie_like, MovieConfig};
use vkg_kg::{EntityId, RelationId};
use vkg_server::{Client, Request, RequestOp, Response, RetryPolicy, Server, ServerConfig};

/// Users occupy ids `0..60` and movies `60..180` in the tiny movie
/// dataset; relation 0 is valid for every query direction.
const USERS: u32 = 60;
const MOVIES: u32 = 120;

fn build_vkg() -> Arc<VirtualKnowledgeGraph> {
    let ds = movie_like(&MovieConfig::tiny());
    let (embeddings, _) = TransE::new(TransEConfig {
        dim: 16,
        epochs: 6,
        ..TransEConfig::default()
    })
    .train(&ds.graph);
    Arc::new(VirtualKnowledgeGraph::assemble(
        ds.graph,
        ds.attributes,
        embeddings,
        VkgConfig::default(),
    ))
}

/// A WAL path in the temp dir, removed again on drop.
struct TempWal(PathBuf);

impl TempWal {
    fn new(tag: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("vkg_serve_{}_{tag}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        TempWal(p)
    }
}

impl Drop for TempWal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn metric(rows: &[(String, u64)], name: &str) -> u64 {
    rows.iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// Satellite regression: sending the SAME tokened `AddFactDynamic`
/// frame twice applies the write once. The duplicate is answered from
/// the idempotency map with the original outcome, the epoch does not
/// advance, and the dedup counter records the hit.
#[test]
fn duplicated_add_fact_frame_does_not_double_apply() {
    let vkg = build_vkg();
    let handle = Server::start(Arc::clone(&vkg), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let req = Request {
        deadline_ms: 0,
        op: RequestOp::AddFactDynamic {
            h: 1,
            r: 0,
            t: USERS + 17,
            refine_steps: 2,
            learning_rate: 0.01,
            token: 0xFEED_FACE,
        },
    };
    let first = client.call(&req).expect("first send answered");
    let Response::FactAdded {
        added: a1,
        epoch: e1,
        token: t1,
    } = first
    else {
        panic!("wanted FactAdded, got {first:?}");
    };
    assert!(a1, "fresh edge applies");
    assert_eq!(t1, 0xFEED_FACE, "token echoed");

    // The exact same frame again — a client retry after a lost ack.
    let second = client.call(&req).expect("duplicate send answered");
    let Response::FactAdded {
        added: a2,
        epoch: e2,
        token: t2,
    } = second
    else {
        panic!("wanted FactAdded, got {second:?}");
    };
    assert_eq!((a2, e2, t2), (a1, e1, t1), "original outcome replayed");
    assert_eq!(vkg.epoch(), e1, "duplicate frame must not publish");

    let metrics = handle.metrics(0);
    assert_eq!(
        metric(&metrics.snapshot.counters, "core.wal.dedup_hits"),
        1,
        "exactly one dedup hit recorded"
    );

    // An untokened duplicate (token 0) is NOT deduplicated — it goes to
    // the graph, which reports the edge as already present.
    let untokened = Request {
        deadline_ms: 0,
        op: RequestOp::AddFactDynamic {
            h: 1,
            r: 0,
            t: USERS + 17,
            refine_steps: 2,
            learning_rate: 0.01,
            token: 0,
        },
    };
    let third = client.call(&untokened).expect("untokened answered");
    let Response::FactAdded { added: a3, .. } = third else {
        panic!("wanted FactAdded, got {third:?}");
    };
    assert!(!a3, "graph-level duplicate");

    handle.shutdown();
}

/// The headline self-healing scenario: a retry-enabled client writes
/// through a forced server restart. The first server (WAL attached) is
/// shut down mid-load; a second server recovers the same WAL on the
/// same address; the client transparently reconnects and finishes. At
/// the end every write is applied exactly once: the final epoch equals
/// the number of distinct logical writes, and the server-side dedup
/// count is covered by the client's recorded write retries.
#[test]
fn self_healing_client_survives_forced_restart_mid_load() {
    let wal = TempWal::new("restart");
    const WRITES: u32 = 12;
    const RESTART_AFTER: u32 = 6;

    let cfg = || ServerConfig {
        wal: Some(wal.0.clone()),
        ..ServerConfig::default()
    };

    let first = Server::start(build_vkg(), "127.0.0.1:0", cfg()).expect("bind loopback");
    let addr = first.addr();
    let mut second_vkg = None;

    let mut client = Client::connect(addr).expect("connect");
    client.set_retry_policy(Some(RetryPolicy {
        max_attempts: 12,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(100),
        seed: 0x00A1_1CE5,
    }));

    let mut first_handle = Some(first);
    let mut second_handle = None;
    let mut acked = Vec::new();
    // Edges already present in the dataset ack with `added = false`,
    // publish nothing, and are never logged — account per phase.
    let mut applied = [0u64; 2];
    for i in 0..WRITES {
        if i == RESTART_AFTER {
            // Forced restart: tear the first server down (dropping every
            // connection) and bring a fresh engine up on the SAME
            // address, recovering the same WAL.
            let counters = first_handle.take().expect("first server live").shutdown();
            assert_eq!(
                counters.admitted, counters.answered,
                "first server answered everything it admitted"
            );
            let vkg = build_vkg();
            second_handle =
                Some(Server::start(Arc::clone(&vkg), addr, cfg()).expect("rebind same address"));
            second_vkg = Some(vkg);
        }
        let (h, t) = (EntityId(i % USERS), EntityId(USERS + (i * 7) % MOVIES));
        let (added, epoch) = client
            .add_fact_idempotent(h, RelationId(0), t, 2, 0.01)
            .expect("self-healing write completes despite the restart");
        if added {
            applied[usize::from(i >= RESTART_AFTER)] += 1;
        }
        acked.push((h, t, epoch));
    }
    let applied_total = applied[0] + applied[1];
    assert!(applied_total > 0, "the plan must apply at least one edge");

    let stats = client.retry_stats();
    assert!(
        stats.reconnects >= 1,
        "the restart must have forced at least one reconnect: {stats:?}"
    );

    // Zero duplicates, three ways. (1) Epoch accounting: the second
    // server replayed the first's acked writes and applied the rest —
    // every logical write published exactly once.
    let second = second_handle.expect("second server live");
    let metrics = second.metrics(0);
    assert_eq!(
        metrics.epoch, applied_total,
        "one publication per applied write"
    );

    // (2) WAL accounting: replayed + fresh appends cover every applied
    // write exactly once, and every server-side dedup hit is explained
    // by a client retry.
    let counters = &metrics.snapshot.counters;
    let gauges = &metrics.snapshot.gauges;
    let replayed = metric(gauges, "server.wal.replayed");
    let appended = metric(gauges, "server.wal.appended");
    let dedup_hits = metric(gauges, "server.wal.dedup_hits");
    assert_eq!(
        metric(counters, "core.wal.replayed"),
        replayed,
        "server gauges mirror the facade counters"
    );
    assert_eq!(replayed, applied[0], "acked prefix recovered");
    assert_eq!(
        replayed + appended,
        applied_total,
        "every applied write logged exactly once"
    );
    assert!(
        dedup_hits <= stats.write_retries,
        "dedup hits ({dedup_hits}) must be covered by client write \
         retries ({}): an unexplained hit means a duplicate frame",
        stats.write_retries
    );

    // (3) Ground truth: the recovered engine holds every acked edge —
    // those replayed from the WAL and those written after the restart.
    let engine = second_vkg.expect("second engine live");
    for &(h, t, _epoch) in &acked {
        assert!(
            engine.graph().tails(h, RelationId(0)).any(|e| e == t),
            "acked edge ({h:?} -> {t:?}) missing after recovery"
        );
    }
    let stats_probe = client.stats().expect("stats after restart");
    assert_eq!(stats_probe.epoch, applied_total);

    let counters = second.shutdown();
    assert_eq!(
        counters.admitted, counters.answered,
        "second server answered everything it admitted"
    );
}
