//! Dynamic updates of the cracking index (the paper's §VIII future work:
//! "we plan to do incremental updates on our partial index").
//!
//! The uneven tree makes this natural: an insert descends to the contour
//! element covering the new point (least MBR enlargement, as in a classic
//! R-tree insert) and splices the point into that element's sorted
//! orders; an overfull leaf simply *reverts to an unsplit partition* and
//! re-cracks lazily when a query next needs it — no eager re-balancing.
//! Removals detach the point from its element and tombstone the id;
//! element MBRs stay conservative (they may over-cover after removals,
//! which affects pruning quality, never correctness).

use crate::error::{VkgError, VkgResult};
use crate::rtree::{height_for, SortOrders};

use super::{CrackingIndex, NodeId, NodeKind};

impl CrackingIndex {
    /// Inserts a new point, returning its id (= the new entity's dense
    /// id). O(height + S·|element|).
    ///
    /// # Errors
    /// Typed [`VkgError`]s for a shape mismatch or id-space overflow —
    /// this path is reachable from served dynamic updates
    /// (`AddFactDynamic`), so it must not panic.
    pub fn insert_point(&mut self, coords: &[f64]) -> VkgResult<u32> {
        let id = self.points.try_push(coords)?;
        self.attach_point(id);
        Ok(id)
    }

    /// Moves an existing point to new coordinates (an embedding update
    /// after local graph changes). The id is stable.
    ///
    /// # Errors
    /// Typed [`VkgError`]s for an unknown or tombstoned id or a shape
    /// mismatch — served dynamic updates reach this, so no panics.
    pub fn update_point(&mut self, id: u32, coords: &[f64]) -> VkgResult<()> {
        if (id as usize) >= self.points.len() {
            return Err(VkgError::InvalidParameter(format!("unknown point id {id}")));
        }
        if self.removed.contains(&id) {
            return Err(VkgError::InvalidParameter(format!(
                "point {id} was removed"
            )));
        }
        // Validate the shape *before* detaching so a failed update
        // leaves the index untouched.
        if coords.len() != self.points.dim() {
            return Err(VkgError::Mismatch {
                what: "point dimensionality",
                expected: self.points.dim(),
                found: coords.len(),
            });
        }
        let detached = self.detach_point(id);
        debug_assert!(detached, "live point must sit in some element");
        self.points.try_set(id, coords)?;
        self.attach_point(id);
        Ok(())
    }

    /// Removes a point from the index (tombstoned; ids are never reused).
    /// Returns whether the point was present and live.
    pub fn remove_point(&mut self, id: u32) -> bool {
        if (id as usize) >= self.points.len() || self.removed.contains(&id) {
            return false;
        }
        let detached = self.detach_point(id);
        if detached {
            self.removed.insert(id);
        }
        detached
    }

    /// Number of live (non-tombstoned) points.
    pub fn live_points(&self) -> usize {
        self.points.len() - self.removed.len()
    }

    /// Whether `id` has been tombstoned by [`CrackingIndex::remove_point`].
    pub fn is_removed(&self, id: u32) -> bool {
        self.removed.contains(&id)
    }

    /// Descends from the root by least MBR enlargement and splices the
    /// point into the reached contour element.
    fn attach_point(&mut self, id: u32) {
        let point: Vec<f64> = self.points.point(id).to_vec();
        let mut cur = self.root;
        loop {
            // Expand the node's region on the way down.
            self.nodes[cur as usize].mbr.include_point(&point);
            let next = match &self.nodes[cur as usize].kind {
                NodeKind::Internal(children) => {
                    debug_assert!(!children.is_empty());
                    children
                        .iter()
                        .copied()
                        .min_by(|&a, &b| {
                            let ea = self.enlargement(a, &point);
                            let eb = self.enlargement(b, &point);
                            ea.total_cmp(&eb).then_with(|| {
                                self.nodes[a as usize]
                                    .mbr
                                    .volume()
                                    .total_cmp(&self.nodes[b as usize].mbr.volume())
                            })
                        })
                        // lint: allow(no-unwrap, split never installs a childless Internal; guarded by the debug_assert above)
                        .expect("internal node has children")
                }
                NodeKind::Leaf(_) | NodeKind::Unsplit(_) => break,
            };
            cur = next;
        }

        let leaf_capacity = self.params.leaf_capacity;
        let fanout = self.params.fanout;
        // Split the borrow: the sorted insert reads point coordinates.
        let points = &self.points;
        let node = &mut self.nodes[cur as usize];
        match &mut node.kind {
            NodeKind::Leaf(ids) => {
                ids.push(id);
                if ids.len() > leaf_capacity {
                    // Overflow: revert to an unsplit partition; the next
                    // query that needs this region re-cracks it.
                    let orders = SortOrders::build(points, std::mem::take(ids));
                    node.height = height_for(orders.len(), leaf_capacity, fanout);
                    node.kind = NodeKind::Unsplit(orders);
                }
            }
            NodeKind::Unsplit(orders) => {
                orders.insert(points, id);
                node.height = height_for(orders.len(), leaf_capacity, fanout);
            }
            // lint: allow(no-unwrap, the descent loop above only breaks on Leaf or Unsplit)
            NodeKind::Internal(_) => unreachable!("descent ends at a contour element"),
        }
    }

    /// MBR-volume enlargement of node `n` if it absorbed `point`.
    fn enlargement(&self, n: NodeId, point: &[f64]) -> f64 {
        let mbr = &self.nodes[n as usize].mbr;
        let mut grown = *mbr;
        grown.include_point(point);
        grown.volume() - mbr.volume()
    }

    /// Removes `id` from the contour element holding it. Returns whether
    /// it was found. Element MBRs are left as (valid) over-approximations.
    fn detach_point(&mut self, id: u32) -> bool {
        let point: Vec<f64> = self.points.point(id).to_vec();
        // Search all elements whose region covers the point's coordinates.
        let mut stack = vec![self.root];
        while let Some(cur) = stack.pop() {
            let node = &mut self.nodes[cur as usize];
            if !node.mbr.contains_point(&point) {
                continue;
            }
            match &mut node.kind {
                NodeKind::Internal(children) => stack.extend(children.iter().copied()),
                NodeKind::Leaf(ids) => {
                    if let Some(pos) = ids.iter().position(|&x| x == id) {
                        ids.swap_remove(pos);
                        return true;
                    }
                }
                NodeKind::Unsplit(orders) => {
                    if orders.remove(id) {
                        return true;
                    }
                }
            }
        }
        // Stale coordinates (e.g. the point moved since): fall back to a
        // full contour sweep.
        for cur in self.contour() {
            let node = &mut self.nodes[cur as usize];
            match &mut node.kind {
                NodeKind::Leaf(ids) => {
                    if let Some(pos) = ids.iter().position(|&x| x == id) {
                        ids.swap_remove(pos);
                        return true;
                    }
                }
                NodeKind::Unsplit(orders) => {
                    if orders.remove(id) {
                        return true;
                    }
                }
                NodeKind::Internal(_) => {}
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SplitStrategy;
    use crate::geometry::{Mbr, PointSet};
    use crate::index::CrackingIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PointSet::from_rows(3, (0..n * 3).map(|_| rng.gen_range(-10.0..10.0)).collect())
    }

    fn search_ids(idx: &mut CrackingIndex, q: &Mbr) -> Vec<u32> {
        let mut out = Vec::new();
        idx.search_region(q, |id| out.push(id));
        out.sort_unstable();
        out
    }

    #[test]
    fn insert_into_fresh_index() {
        let mut idx = CrackingIndex::new(random_points(100, 1), 8, 4, 2.0, SplitStrategy::Greedy);
        let id = idx
            .insert_point(&[1.0, 2.0, 3.0])
            .expect("well-shaped insert");
        assert_eq!(id, 100);
        idx.check_invariants();
        let q = Mbr::of_ball(&[1.0, 2.0, 3.0], 0.1);
        assert!(search_ids(&mut idx, &q).contains(&id));
    }

    #[test]
    fn insert_after_cracking_lands_in_leaf() {
        let mut idx = CrackingIndex::new(random_points(2_000, 2), 8, 4, 2.0, SplitStrategy::Greedy);
        let target = [0.5, 0.5, 0.5];
        idx.crack(&Mbr::of_ball(&target, 2.0));
        let nodes_before = idx.node_count();
        let id = idx.insert_point(&target).expect("well-shaped insert");
        idx.check_invariants();
        assert_eq!(idx.node_count(), nodes_before, "insert allocates no nodes");
        let q = Mbr::of_ball(&target, 0.05);
        assert!(search_ids(&mut idx, &q).contains(&id));
    }

    #[test]
    fn leaf_overflow_reverts_to_partition_and_recracks() {
        let mut idx = CrackingIndex::new(random_points(500, 3), 4, 2, 2.0, SplitStrategy::Greedy);
        let spot = [7.0, 7.0, 7.0];
        idx.crack(&Mbr::of_ball(&spot, 1.0));
        // Stuff one location until leaves overflow repeatedly.
        let mut ids = Vec::new();
        for i in 0..40 {
            ids.push(
                idx.insert_point(&[7.0 + i as f64 * 1e-3, 7.0, 7.0])
                    .expect("well-shaped insert"),
            );
        }
        idx.check_invariants();
        // A fresh crack tidies the overflowed partitions back to ≤ N.
        idx.crack(&Mbr::of_ball(&spot, 1.0));
        idx.check_invariants();
        let q = Mbr::of_ball(&spot, 0.5);
        let found = search_ids(&mut idx, &q);
        for id in ids {
            assert!(found.contains(&id));
        }
    }

    #[test]
    fn remove_point_tombstones() {
        let mut idx = CrackingIndex::new(random_points(300, 4), 8, 4, 2.0, SplitStrategy::Greedy);
        idx.crack(&Mbr::of_ball(&[0.0, 0.0, 0.0], 5.0));
        assert!(idx.remove_point(5));
        assert!(!idx.remove_point(5), "double remove is a no-op");
        assert!(idx.is_removed(5));
        assert_eq!(idx.live_points(), 299);
        idx.check_invariants();
        let everywhere = Mbr::of_ball(&[0.0, 0.0, 0.0], 100.0);
        let found = search_ids(&mut idx, &everywhere);
        assert_eq!(found.len(), 299);
        assert!(!found.contains(&5));
    }

    #[test]
    fn update_point_moves_it() {
        let mut idx = CrackingIndex::new(random_points(400, 5), 8, 4, 2.0, SplitStrategy::Greedy);
        idx.crack(&Mbr::of_ball(&[0.0, 0.0, 0.0], 3.0));
        let old = idx.points().point(7).to_vec();
        idx.update_point(7, &[9.5, 9.5, 9.5]).expect("live id");
        idx.check_invariants();
        let near_new = Mbr::of_ball(&[9.5, 9.5, 9.5], 0.1);
        assert!(search_ids(&mut idx, &near_new).contains(&7));
        let near_old = Mbr::of_ball(&old, 1e-6);
        assert!(!search_ids(&mut idx, &near_old).contains(&7));
    }

    #[test]
    fn interleaved_updates_and_queries_stay_exact() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut idx = CrackingIndex::new(random_points(800, 6), 8, 4, 2.0, SplitStrategy::Greedy);
        let mut live: std::collections::HashSet<u32> = (0..800u32).collect();
        for round in 0..30 {
            match round % 3 {
                0 => {
                    let p = [
                        rng.gen_range(-10.0..10.0),
                        rng.gen_range(-10.0..10.0),
                        rng.gen_range(-10.0..10.0),
                    ];
                    live.insert(idx.insert_point(&p).expect("well-shaped insert"));
                }
                1 => {
                    if let Some(&id) = live.iter().next() {
                        idx.remove_point(id);
                        live.remove(&id);
                    }
                }
                _ => {
                    let c = [
                        rng.gen_range(-10.0..10.0),
                        rng.gen_range(-10.0..10.0),
                        rng.gen_range(-10.0..10.0),
                    ];
                    idx.crack(&Mbr::of_ball(&c, 2.0));
                }
            }
            idx.check_invariants();
        }
        // Exactness against brute force over live points.
        let q = Mbr::of_ball(&[1.0, -1.0, 1.0], 4.0);
        let got = search_ids(&mut idx, &q);
        let want: Vec<u32> = (0..idx.points().len() as u32)
            .filter(|&i| live.contains(&i) && idx.points().in_region(i, &q))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn remove_unknown_ids() {
        let mut idx = CrackingIndex::new(random_points(10, 7), 8, 4, 2.0, SplitStrategy::Greedy);
        assert!(!idx.remove_point(999));
    }

    #[test]
    fn dynamic_errors_are_typed_not_panics() {
        use crate::error::VkgError;
        let mut idx = CrackingIndex::new(random_points(50, 8), 8, 4, 2.0, SplitStrategy::Greedy);
        assert!(matches!(
            idx.insert_point(&[1.0, 2.0]),
            Err(VkgError::Mismatch {
                what: "point dimensionality",
                expected: 3,
                found: 2,
            })
        ));
        assert!(matches!(
            idx.update_point(999, &[0.0, 0.0, 0.0]),
            Err(VkgError::InvalidParameter(_))
        ));
        assert!(idx.remove_point(3));
        assert!(matches!(
            idx.update_point(3, &[0.0, 0.0, 0.0]),
            Err(VkgError::InvalidParameter(_))
        ));
        assert!(matches!(
            idx.update_point(4, &[0.0]),
            Err(VkgError::Mismatch { .. })
        ));
        // Failed calls left the index consistent.
        idx.check_invariants();
        assert_eq!(idx.live_points(), 49);
    }
}
