//! Minimum bounding regions (MBRs) in S₂.
//!
//! Fixed-capacity coordinate arrays (`MAX_DIM`) keep MBRs `Copy` and free
//! of per-instance heap allocation — node splits create and discard many
//! thousands of candidate boxes.

/// Maximum supported dimensionality of the index space S₂.
///
/// The paper uses α = 3 or 6; 16 covers the wider projections the
/// microbenchmarks exercise while keeping the struct a small `Copy`
/// value (264 bytes).
pub const MAX_DIM: usize = 16;

/// An axis-aligned minimum bounding region.
///
/// An *empty* MBR (containing no points) has `min > max` on every axis and
/// behaves as the identity for [`Mbr::include_mbr`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mbr {
    dim: u8,
    min: [f64; MAX_DIM],
    max: [f64; MAX_DIM],
}

impl Mbr {
    /// Creates an empty MBR of the given dimensionality.
    ///
    /// # Panics
    /// Panics if `dim` is zero or exceeds [`MAX_DIM`].
    pub fn empty(dim: usize) -> Self {
        assert!(
            dim > 0 && dim <= MAX_DIM,
            "invalid MBR dimensionality {dim}"
        );
        Self {
            dim: dim as u8,
            min: [f64::INFINITY; MAX_DIM],
            max: [f64::NEG_INFINITY; MAX_DIM],
        }
    }

    /// Creates the MBR of a ball: the box `[center − r, center + r]^α`
    /// (line 4 of Algorithm 3 takes the bounding box of `B(q, r_q)`).
    ///
    /// # Panics
    /// Panics if the center's dimensionality is unsupported or `r < 0`.
    pub fn of_ball(center: &[f64], radius: f64) -> Self {
        assert!(radius >= 0.0, "negative ball radius {radius}");
        let mut mbr = Mbr::empty(center.len());
        for (i, &c) in center.iter().enumerate() {
            mbr.min[i] = c - radius;
            mbr.max[i] = c + radius;
        }
        mbr
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// Lower bound on `axis`.
    #[inline]
    pub fn min(&self, axis: usize) -> f64 {
        self.min[axis]
    }

    /// Upper bound on `axis`.
    #[inline]
    pub fn max(&self, axis: usize) -> f64 {
        self.max[axis]
    }

    /// Whether no point has been included.
    pub fn is_empty(&self) -> bool {
        self.min[0] > self.max[0]
    }

    /// Expands to cover `p`.
    #[inline]
    pub fn include_point(&mut self, p: &[f64]) {
        debug_assert_eq!(p.len(), self.dim());
        for (i, &pi) in p.iter().enumerate().take(self.dim()) {
            self.min[i] = self.min[i].min(pi);
            self.max[i] = self.max[i].max(pi);
        }
    }

    /// Expands to cover `other`.
    pub fn include_mbr(&mut self, other: &Mbr) {
        debug_assert_eq!(self.dim, other.dim);
        for i in 0..self.dim() {
            self.min[i] = self.min[i].min(other.min[i]);
            self.max[i] = self.max[i].max(other.max[i]);
        }
    }

    /// Whether `p` lies inside (inclusive).
    #[inline]
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.dim());
        (0..self.dim()).all(|i| self.min[i] <= p[i] && p[i] <= self.max[i])
    }

    /// Whether the two regions overlap (inclusive).
    #[inline]
    pub fn intersects(&self, other: &Mbr) -> bool {
        debug_assert_eq!(self.dim, other.dim);
        if self.is_empty() || other.is_empty() {
            return false;
        }
        (0..self.dim()).all(|i| self.min[i] <= other.max[i] && other.min[i] <= self.max[i])
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains_mbr(&self, other: &Mbr) -> bool {
        debug_assert_eq!(self.dim, other.dim);
        if other.is_empty() {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        (0..self.dim()).all(|i| self.min[i] <= other.min[i] && other.max[i] <= self.max[i])
    }

    /// Volume (product of side lengths); 0 for empty or degenerate boxes.
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..self.dim())
            .map(|i| (self.max[i] - self.min[i]).max(0.0))
            .product()
    }

    /// Volume of the intersection with `other` (`‖O‖` in the §IV-B1 cost
    /// model); 0 when disjoint.
    pub fn overlap_volume(&self, other: &Mbr) -> f64 {
        debug_assert_eq!(self.dim, other.dim);
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let mut v = 1.0;
        for i in 0..self.dim() {
            let side = self.max[i].min(other.max[i]) - self.min[i].max(other.min[i]);
            if side <= 0.0 {
                return 0.0;
            }
            v *= side;
        }
        v
    }

    /// Squared distance from `p` to the nearest point of the region
    /// (0 when inside) — the standard R-tree kNN pruning bound.
    pub fn min_distance_sq(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.dim());
        if self.is_empty() {
            return f64::INFINITY;
        }
        (0..self.dim())
            .map(|i| {
                let d = if p[i] < self.min[i] {
                    self.min[i] - p[i]
                } else if p[i] > self.max[i] {
                    p[i] - self.max[i]
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }

    /// The center of the region (empty regions return the origin).
    pub fn center(&self) -> [f64; MAX_DIM] {
        let mut c = [0.0; MAX_DIM];
        if !self.is_empty() {
            for (i, ci) in c.iter_mut().enumerate().take(self.dim()) {
                *ci = (self.min[i] + self.max[i]) / 2.0;
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Mbr {
        let mut m = Mbr::empty(2);
        m.include_point(&[0.0, 0.0]);
        m.include_point(&[1.0, 1.0]);
        m
    }

    #[test]
    fn empty_behaviour() {
        let e = Mbr::empty(3);
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
        assert!(!e.intersects(&e));
        assert_eq!(e.min_distance_sq(&[0.0, 0.0, 0.0]), f64::INFINITY);
    }

    #[test]
    fn include_point_grows() {
        let b = unit_box();
        assert!(!b.is_empty());
        assert!(b.contains_point(&[0.5, 0.5]));
        assert!(b.contains_point(&[1.0, 0.0]));
        assert!(!b.contains_point(&[1.5, 0.5]));
        assert_eq!(b.volume(), 1.0);
    }

    #[test]
    fn include_mbr_union() {
        let mut a = unit_box();
        let mut b = Mbr::empty(2);
        b.include_point(&[2.0, 2.0]);
        a.include_mbr(&b);
        assert!(a.contains_point(&[2.0, 2.0]));
        assert_eq!(a.volume(), 4.0);
        // Union with empty is identity.
        let before = a;
        a.include_mbr(&Mbr::empty(2));
        assert_eq!(a, before);
    }

    #[test]
    fn intersection_tests() {
        let a = unit_box();
        let mut b = Mbr::empty(2);
        b.include_point(&[0.5, 0.5]);
        b.include_point(&[2.0, 2.0]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        let overlap = a.overlap_volume(&b);
        assert!((overlap - 0.25).abs() < 1e-12);

        let mut c = Mbr::empty(2);
        c.include_point(&[5.0, 5.0]);
        assert!(!a.intersects(&c));
        assert_eq!(a.overlap_volume(&c), 0.0);
    }

    #[test]
    fn touching_boxes_intersect_with_zero_overlap_volume() {
        let a = unit_box();
        let mut b = Mbr::empty(2);
        b.include_point(&[1.0, 0.0]);
        b.include_point(&[2.0, 1.0]);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_volume(&b), 0.0);
    }

    #[test]
    fn containment() {
        let a = unit_box();
        let mut inner = Mbr::empty(2);
        inner.include_point(&[0.25, 0.25]);
        inner.include_point(&[0.75, 0.75]);
        assert!(a.contains_mbr(&inner));
        assert!(!inner.contains_mbr(&a));
        assert!(a.contains_mbr(&Mbr::empty(2)));
    }

    #[test]
    fn ball_region() {
        let q = Mbr::of_ball(&[1.0, 2.0], 0.5);
        assert_eq!(q.min(0), 0.5);
        assert_eq!(q.max(0), 1.5);
        assert_eq!(q.min(1), 1.5);
        assert_eq!(q.max(1), 2.5);
        assert!(q.contains_point(&[1.0, 2.0]));
        // Zero radius is the degenerate point box.
        let p = Mbr::of_ball(&[1.0, 2.0], 0.0);
        assert!(p.contains_point(&[1.0, 2.0]));
        assert_eq!(p.volume(), 0.0);
    }

    #[test]
    fn min_distance() {
        let a = unit_box();
        assert_eq!(a.min_distance_sq(&[0.5, 0.5]), 0.0);
        assert_eq!(a.min_distance_sq(&[2.0, 0.5]), 1.0);
        assert_eq!(a.min_distance_sq(&[2.0, 2.0]), 2.0);
    }

    #[test]
    fn center_of_box() {
        let c = unit_box().center();
        assert_eq!(&c[..2], &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "invalid MBR dimensionality")]
    fn zero_dim_rejected() {
        let _ = Mbr::empty(0);
    }
}
