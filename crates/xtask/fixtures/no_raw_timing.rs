// pretend: crates/core/src/engine/shard.rs
// Fixture for the no-raw-timing rule: shipped code must take time
// through the vkg-obs Clock seam, never std's clocks directly.

fn raw_instant() -> std::time::Instant {
    std::time::Instant::now() // expect: no-raw-timing
}

fn raw_wall_clock() -> std::time::SystemTime {
    std::time::SystemTime::now() // expect: no-raw-timing
}

fn suppressed() -> std::time::Instant {
    // lint: allow(no-raw-timing, calibrating the clock seam itself against raw time)
    std::time::Instant::now()
}

fn through_the_seam(clock: &vkg_obs::Clock) -> vkg_obs::Tick {
    clock.now()
}

fn string_and_comment_immunity() -> &'static str {
    // a comment mentioning Instant::now() never fires
    "neither does SystemTime::now( in a string"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_raw_time() {
        let _ = std::time::Instant::now();
    }
}
