//! The embedding store: dense entity/relation matrices in space S₁.
//!
//! This is the artifact the index layer consumes. It does not care *how*
//! the vectors were produced — our own TransE/TransA trainers, or an
//! external tool via [`crate::io`] — only that entity `e`'s vector lives
//! at row `e` and relation `r`'s at row `r`.

use vkg_kg::{EntityId, RelationId};

use crate::vector::{add, l2_distance, sub};

/// Dense `d`-dimensional embeddings for all entities and relation types.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingStore {
    dim: usize,
    entities: Vec<f64>,
    relations: Vec<f64>,
}

impl EmbeddingStore {
    /// Creates a zero-initialized store for `n` entities and `m` relations
    /// of dimensionality `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn zeros(n: usize, m: usize, dim: usize) -> Self {
        assert!(dim > 0, "embedding dimensionality must be positive");
        Self {
            dim,
            entities: vec![0.0; n * dim],
            relations: vec![0.0; m * dim],
        }
    }

    /// Builds a store from raw row-major matrices.
    ///
    /// # Panics
    /// Panics if either matrix length is not a multiple of `dim`.
    pub fn from_raw(dim: usize, entities: Vec<f64>, relations: Vec<f64>) -> Self {
        assert!(dim > 0, "embedding dimensionality must be positive");
        assert_eq!(entities.len() % dim, 0, "entity matrix shape mismatch");
        assert_eq!(relations.len() % dim, 0, "relation matrix shape mismatch");
        Self {
            dim,
            entities,
            relations,
        }
    }

    /// Embedding dimensionality `d` (the paper's S₁ has d in 50–100).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of entity rows.
    pub fn num_entities(&self) -> usize {
        self.entities.len() / self.dim
    }

    /// Number of relation rows.
    pub fn num_relations(&self) -> usize {
        self.relations.len() / self.dim
    }

    /// Entity `e`'s vector.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    #[inline]
    pub fn entity(&self, e: EntityId) -> &[f64] {
        let i = e.index() * self.dim;
        &self.entities[i..i + self.dim]
    }

    /// Mutable entity vector.
    #[inline]
    pub fn entity_mut(&mut self, e: EntityId) -> &mut [f64] {
        let i = e.index() * self.dim;
        &mut self.entities[i..i + self.dim]
    }

    /// Relation `r`'s vector.
    #[inline]
    pub fn relation(&self, r: RelationId) -> &[f64] {
        let i = r.index() * self.dim;
        &self.relations[i..i + self.dim]
    }

    /// Mutable relation vector.
    #[inline]
    pub fn relation_mut(&mut self, r: RelationId) -> &mut [f64] {
        let i = r.index() * self.dim;
        &mut self.relations[i..i + self.dim]
    }

    /// The tail-query point `h + r`: tails `t` of plausible `(h, r, t)`
    /// triples cluster around this point (paper §I).
    pub fn tail_query_point(&self, h: EntityId, r: RelationId) -> Vec<f64> {
        add(self.entity(h), self.relation(r))
    }

    /// The head-query point `t − r`: heads `h` of plausible `(h, r, t)`
    /// triples cluster around this point.
    pub fn head_query_point(&self, t: EntityId, r: RelationId) -> Vec<f64> {
        sub(self.entity(t), self.relation(r))
    }

    /// TransE plausibility score of a triple: `‖h + r − t‖₂` (lower is
    /// more plausible).
    pub fn triple_distance(&self, h: EntityId, r: RelationId, t: EntityId) -> f64 {
        let q = self.tail_query_point(h, r);
        l2_distance(&q, self.entity(t))
    }

    /// Distance from an arbitrary S₁ point to entity `e`'s vector.
    #[inline]
    pub fn distance_to_entity(&self, point: &[f64], e: EntityId) -> f64 {
        l2_distance(point, self.entity(e))
    }

    /// Appends an entity row, returning its id (dynamic graph updates).
    ///
    /// # Panics
    /// Panics if the row's dimensionality does not match the store's.
    pub fn push_entity(&mut self, row: &[f64]) -> EntityId {
        assert_eq!(row.len(), self.dim, "entity row dimensionality mismatch");
        // lint: allow(no-unwrap, documented # Panics contract; 2^32 rows would exhaust memory first)
        let id = u32::try_from(self.num_entities()).expect("entity id overflow");
        self.entities.extend_from_slice(row);
        EntityId(id)
    }

    /// Raw row-major entity matrix (for the transform layer).
    pub fn entity_matrix(&self) -> &[f64] {
        &self.entities
    }

    /// Raw row-major relation matrix.
    pub fn relation_matrix(&self) -> &[f64] {
        &self.relations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> EmbeddingStore {
        // 3 entities, 2 relations, dim 2.
        EmbeddingStore::from_raw(
            2,
            vec![0.0, 0.0, 1.0, 0.0, 1.0, 1.0],
            vec![1.0, 0.0, 0.0, 1.0],
        )
    }

    #[test]
    fn shape_accessors() {
        let s = store();
        assert_eq!(s.dim(), 2);
        assert_eq!(s.num_entities(), 3);
        assert_eq!(s.num_relations(), 2);
    }

    #[test]
    fn row_access() {
        let s = store();
        assert_eq!(s.entity(EntityId(1)), &[1.0, 0.0]);
        assert_eq!(s.relation(RelationId(1)), &[0.0, 1.0]);
    }

    #[test]
    fn query_points() {
        let s = store();
        // h=e0 (0,0) + r0 (1,0) = (1,0) → exactly e1.
        assert_eq!(
            s.tail_query_point(EntityId(0), RelationId(0)),
            vec![1.0, 0.0]
        );
        // t=e2 (1,1) − r1 (0,1) = (1,0) → exactly e1.
        assert_eq!(
            s.head_query_point(EntityId(2), RelationId(1)),
            vec![1.0, 0.0]
        );
    }

    #[test]
    fn triple_distance_zero_for_exact_translation() {
        let s = store();
        assert_eq!(
            s.triple_distance(EntityId(0), RelationId(0), EntityId(1)),
            0.0
        );
        let d = s.triple_distance(EntityId(0), RelationId(0), EntityId(2));
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mutation_visible_through_reads() {
        let mut s = store();
        s.entity_mut(EntityId(0))[0] = 9.0;
        assert_eq!(s.entity(EntityId(0)), &[9.0, 0.0]);
        s.relation_mut(RelationId(0))[1] = -1.0;
        assert_eq!(s.relation(RelationId(0)), &[1.0, -1.0]);
    }

    #[test]
    fn zeros_constructor() {
        let s = EmbeddingStore::zeros(4, 2, 3);
        assert_eq!(s.num_entities(), 4);
        assert_eq!(s.num_relations(), 2);
        assert!(s.entity(EntityId(3)).iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape_rejected() {
        let _ = EmbeddingStore::from_raw(3, vec![1.0; 7], vec![]);
    }
}
