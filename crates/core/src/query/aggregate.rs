//! Aggregate and statistical queries (§V-B): COUNT, SUM, AVG, MAX, MIN
//! over the attributes of the entities in a probability ball, with the
//! martingale (Azuma) deviation bound of Theorem 4.
//!
//! The relevant entities lie in the S₁ ball of radius `r_τ = d_min/p_τ`
//! around the query center; their probabilities decrease from 1 at the
//! center (inverse-distance model). The estimator accesses only the `a`
//! most-probable of the `b` ball members and scales up per Equation (3)
//! (COUNT/SUM/AVG) or Equation (4) (MAX/MIN).

/// Which aggregate to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateKind {
    /// Expected number of relevant entities.
    Count,
    /// Expected sum of an attribute.
    Sum,
    /// Expected average of an attribute.
    Avg,
    /// Expected maximum of an attribute.
    Max,
    /// Expected minimum of an attribute.
    Min,
}

/// Specification of one aggregate query.
#[derive(Debug, Clone)]
pub struct AggregateSpec {
    /// The aggregate to compute.
    pub kind: AggregateKind,
    /// Attribute name (ignored for COUNT).
    pub attribute: Option<String>,
    /// Probability threshold `p_τ` delimiting the ball (paper example:
    /// 0.05; ground truth in §VI uses 0.01).
    pub p_tau: f64,
    /// How many of the closest points to access (`a`); `None` = all.
    pub sample_size: Option<usize>,
}

impl AggregateSpec {
    /// COUNT with threshold `p_τ`.
    pub fn count(p_tau: f64) -> Self {
        Self {
            kind: AggregateKind::Count,
            attribute: None,
            p_tau,
            sample_size: None,
        }
    }

    /// An attribute aggregate with threshold `p_τ`.
    pub fn of(kind: AggregateKind, attribute: &str, p_tau: f64) -> Self {
        Self {
            kind,
            attribute: Some(attribute.to_owned()),
            p_tau,
            sample_size: None,
        }
    }

    /// Restricts the estimator to the `a` most-probable entities.
    pub fn with_sample(mut self, a: usize) -> Self {
        self.sample_size = Some(a);
        self
    }
}

/// The Theorem 4 deviation bound attached to an estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviationBound {
    /// The estimate μ the bound is relative to.
    pub mu: f64,
    /// `Σ_{i≤a} vᵢ² + (b−a)·v_m²` — the martingale increment mass.
    pub increment_mass: f64,
}

impl DeviationBound {
    /// `Pr[|S − μ| ≥ δμ] ≤ 2·exp(−2δ²μ² / (Σ vᵢ² + (b−a)v_m²))`.
    pub fn tail_probability(&self, delta: f64) -> f64 {
        assert!(delta >= 0.0, "δ must be non-negative");
        if self.increment_mass <= 0.0 {
            // No unaccessed mass and zero accessed values: the estimate is
            // exact.
            return if delta == 0.0 { 1.0 } else { 0.0 };
        }
        (2.0 * (-2.0 * delta * delta * self.mu * self.mu / self.increment_mass).exp()).min(1.0)
    }

    /// The smallest relative error δ guaranteed with probability at least
    /// `confidence` (inverts the tail bound).
    pub fn delta_for_confidence(&self, confidence: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&confidence),
            "confidence must be in [0, 1), got {confidence}"
        );
        if self.increment_mass <= 0.0 || self.mu == 0.0 {
            return 0.0;
        }
        let tail = 1.0 - confidence;
        ((self.increment_mass * (2.0 / tail).ln()) / (2.0 * self.mu * self.mu)).sqrt()
    }
}

/// Result of one aggregate query.
#[derive(Debug, Clone)]
pub struct AggregateResult {
    /// The expected aggregate value.
    pub estimate: f64,
    /// Number of entities accessed (`a`).
    pub accessed: usize,
    /// Total entities in the ball (`b`).
    pub ball_size: usize,
    /// The Theorem 4 deviation bound (meaningful for COUNT/SUM/AVG; for
    /// MAX/MIN it is the analogous bound sketched at the end of §V-B).
    pub bound: DeviationBound,
}

/// Equation (3): expected SUM from the `a` accessed `(value, probability)`
/// pairs and the probabilities of **all** `b` ball members
/// (`probs_all[i]` descending; the first `values.len()` entries align
/// with `values`).
pub fn estimate_sum(values: &[f64], probs_all: &[f64]) -> f64 {
    let a = values.len();
    assert!(a <= probs_all.len(), "more values than ball members");
    if a == 0 {
        return 0.0;
    }
    let weighted: f64 = values.iter().zip(probs_all).map(|(v, p)| v * p).sum();
    let sum_a: f64 = probs_all[..a].iter().sum();
    let sum_b: f64 = probs_all.iter().sum();
    if sum_a <= 0.0 {
        return 0.0;
    }
    weighted * (sum_b / sum_a)
}

/// COUNT = SUM over the constant 1: `Σ_{i≤b} pᵢ` (independent of `a`
/// because the index already knows every ball member's probability).
pub fn estimate_count(probs_all: &[f64]) -> f64 {
    probs_all.iter().sum()
}

/// AVG = SUM/COUNT: the probability-weighted mean of the accessed values.
pub fn estimate_avg(values: &[f64], probs_all: &[f64]) -> f64 {
    let a = values.len();
    assert!(a <= probs_all.len(), "more values than ball members");
    if a == 0 {
        return 0.0;
    }
    let weighted: f64 = values.iter().zip(probs_all).map(|(v, p)| v * p).sum();
    let sum_a: f64 = probs_all[..a].iter().sum();
    if sum_a <= 0.0 {
        return 0.0;
    }
    weighted / sum_a
}

/// Equation (4): expected MAX from the accessed sample.
///
/// `E[M_S] = Σ uᵢ·pᵢ·∏_{j<i}(1−pⱼ)` with values re-sorted descending, then
/// the sample-maximum correction
/// `E[M] = (E[M_S] − min v)(1 + 1/Σ pᵢ) + min v`.
pub fn estimate_max(values: &[f64], probs: &[f64]) -> f64 {
    let a = values.len();
    assert_eq!(a, probs.len(), "values/probs length mismatch");
    if a == 0 {
        return 0.0;
    }
    // Sort (value, prob) by value descending.
    let mut pairs: Vec<(f64, f64)> = values.iter().copied().zip(probs.iter().copied()).collect();
    pairs.sort_by(|x, y| y.0.total_cmp(&x.0));

    let mut expected_sample_max = 0.0;
    let mut none_before = 1.0;
    for &(u, p) in &pairs {
        expected_sample_max += u * none_before * p;
        none_before *= 1.0 - p;
    }
    let min_v = values.iter().copied().fold(f64::INFINITY, f64::min);
    let sum_p: f64 = probs.iter().sum();
    if sum_p <= 0.0 {
        return expected_sample_max;
    }
    // The sample-maximum correction of [19] assumes an effective sample
    // size Σpᵢ of at least one draw; with less probability mass than one
    // relevant point there is no basis for extrapolating beyond the
    // sample, so the factor is clamped (and the result never drops below
    // the uncorrected expectation — Eq. (4) can otherwise swing negative
    // when E[M_S] < min v).
    let effective_n = sum_p.max(1.0);
    let corrected = (expected_sample_max - min_v) * (1.0 + 1.0 / effective_n) + min_v;
    corrected.max(expected_sample_max)
}

/// MIN via negation: `MIN(v) = −MAX(−v)`.
pub fn estimate_min(values: &[f64], probs: &[f64]) -> f64 {
    let negated: Vec<f64> = values.iter().map(|v| -v).collect();
    -estimate_max(&negated, probs)
}

/// Builds the Theorem 4 deviation bound.
///
/// * `mu` — the estimate.
/// * `accessed_values` — the `a` accessed attribute values (1s for COUNT).
/// * `unaccessed_probs` — the `b − a` estimated inclusion probabilities of
///   the unaccessed points (only their count enters the mass: the Azuma
///   increment of an unrevealed member is its full value range `v_m`,
///   whatever its inclusion probability).
/// * `v_max_unaccessed` — (an upper estimate of) the largest |value| among
///   the unaccessed points. The paper suggests R-tree statistics or the
///   sample-max inflation of Eq. (4); callers pick.
pub fn deviation_bound(
    mu: f64,
    accessed_values: &[f64],
    unaccessed_probs: &[f64],
    v_max_unaccessed: f64,
) -> DeviationBound {
    let mass: f64 = accessed_values.iter().map(|v| v * v).sum::<f64>()
        + unaccessed_probs.len() as f64 * v_max_unaccessed * v_max_unaccessed;
    DeviationBound {
        mu,
        increment_mass: mass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_with_full_access_is_expected_value() {
        // Full access (a = b): E[s] = Σ vᵢpᵢ · (Σp/Σp) = Σ vᵢpᵢ.
        let values = [10.0, 20.0, 30.0];
        let probs = [1.0, 0.5, 0.25];
        let e = estimate_sum(&values, &probs);
        assert!((e - (10.0 + 10.0 + 7.5)).abs() < 1e-12);
    }

    #[test]
    fn sum_scales_partial_sample() {
        // Access only the first of two identical points: estimator must
        // scale up by Σ_b p / Σ_a p = 1.5/1.0.
        let e = estimate_sum(&[10.0], &[1.0, 0.5]);
        assert!((e - 15.0).abs() < 1e-12);
    }

    #[test]
    fn count_sums_probabilities() {
        assert!((estimate_count(&[1.0, 0.5, 0.25, 0.05]) - 1.8).abs() < 1e-12);
        assert_eq!(estimate_count(&[]), 0.0);
    }

    #[test]
    fn avg_is_weighted_mean() {
        let e = estimate_avg(&[10.0, 30.0], &[1.0, 0.5]);
        assert!((e - (10.0 + 15.0) / 1.5).abs() < 1e-12);
        // Constant values → AVG equals the constant regardless of probs.
        let c = estimate_avg(&[7.0, 7.0, 7.0], &[1.0, 0.3, 0.1]);
        assert!((c - 7.0).abs() < 1e-12);
    }

    #[test]
    fn avg_unaffected_by_unaccessed_probability_mass() {
        let partial = estimate_avg(&[10.0, 30.0], &[1.0, 0.5, 0.4, 0.3]);
        let full_probs = estimate_avg(&[10.0, 30.0], &[1.0, 0.5]);
        assert!((partial - full_probs).abs() < 1e-12);
    }

    #[test]
    fn max_with_certain_point_is_that_point_dominated() {
        // Single certain value: E[M_S] = v; correction (v−v)(1+1/1)+v = v.
        let e = estimate_max(&[42.0], &[1.0]);
        assert!((e - 42.0).abs() < 1e-12);
    }

    #[test]
    fn max_correction_extrapolates_beyond_sample() {
        // Uniform sample far from its own max → estimator exceeds the
        // sample max (the (1 + 1/n) correction of [19]).
        let values = [1.0, 2.0, 3.0, 4.0];
        let probs = [1.0, 1.0, 1.0, 1.0];
        let e = estimate_max(&values, &probs);
        assert!(e > 4.0, "estimate {e} should exceed the sample max");
        assert!(e < 6.0, "estimate {e} unreasonably large");
    }

    #[test]
    fn max_weighs_improbable_large_values_less() {
        let certain = estimate_max(&[10.0, 100.0], &[1.0, 1.0]);
        let unlikely = estimate_max(&[10.0, 100.0], &[1.0, 0.01]);
        assert!(unlikely < certain);
    }

    #[test]
    fn min_mirrors_max() {
        let values = [3.0, 9.0, 1.0];
        let probs = [1.0, 0.5, 0.8];
        let min = estimate_min(&values, &probs);
        let neg: Vec<f64> = values.iter().map(|v| -v).collect();
        let max_of_neg = estimate_max(&neg, &probs);
        assert!((min + max_of_neg).abs() < 1e-12);
        assert!(min < 3.0, "min estimate {min} should be pulled low");
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(estimate_sum(&[], &[]), 0.0);
        assert_eq!(estimate_avg(&[], &[]), 0.0);
        assert_eq!(estimate_max(&[], &[]), 0.0);
        assert_eq!(estimate_min(&[], &[]), 0.0);
    }

    #[test]
    fn deviation_bound_monotone_in_delta() {
        let b = deviation_bound(100.0, &[5.0, 5.0, 5.0], &[1.0; 10], 5.0);
        let mut prev = f64::INFINITY;
        for d in [0.01, 0.05, 0.1, 0.5, 1.0] {
            let p = b.tail_probability(d);
            assert!(p <= prev);
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn deviation_bound_tightens_with_more_access() {
        // Accessing more points moves mass from (b−a)v_m² to Σ v² with
        // smaller values → smaller increment mass → tighter bound.
        let loose = deviation_bound(100.0, &[5.0], &[1.0; 20], 10.0);
        let tight = deviation_bound(100.0, &[5.0; 15], &[1.0; 6], 10.0);
        assert!(tight.increment_mass < loose.increment_mass);
        assert!(tight.tail_probability(0.1) <= loose.tail_probability(0.1));
    }

    #[test]
    fn confidence_inversion_roundtrip() {
        let b = deviation_bound(50.0, &[2.0; 10], &[1.0; 5], 3.0);
        for conf in [0.5, 0.9, 0.99] {
            let delta = b.delta_for_confidence(conf);
            let tail = b.tail_probability(delta);
            assert!(
                tail <= 1.0 - conf + 1e-9,
                "conf {conf}: δ {delta} gives tail {tail}"
            );
        }
    }

    #[test]
    fn exact_estimate_has_zero_tail() {
        let b = deviation_bound(10.0, &[], &[], 0.0);
        assert_eq!(b.tail_probability(0.5), 0.0);
        assert_eq!(b.delta_for_confidence(0.99), 0.0);
    }

    #[test]
    fn spec_builders() {
        let c = AggregateSpec::count(0.05);
        assert_eq!(c.kind, AggregateKind::Count);
        assert!(c.attribute.is_none());
        let s = AggregateSpec::of(AggregateKind::Avg, "year", 0.01).with_sample(100);
        assert_eq!(s.kind, AggregateKind::Avg);
        assert_eq!(s.attribute.as_deref(), Some("year"));
        assert_eq!(s.sample_size, Some(100));
    }
}
