//! Per-answer accuracy guarantees (Theorems 2 and 3), attached to every
//! top-k result.

use vkg_transform::bounds;

/// The data-dependent guarantee of Theorem 2 for one answered top-k query.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKGuarantee {
    /// The ratios `mᵢ = (r*_k / r*_i)(1+ε)` for the k reported entities.
    pub ratios: Vec<f64>,
    /// Probability that no true top-k entity was missed.
    pub success_probability: f64,
    /// Expected number of missing entities vs the ground truth.
    pub expected_misses: f64,
}

/// Computes the Theorem 2 guarantee from the S₁ distances of the reported
/// top-k entities (ascending order expected but not required).
///
/// `r*_k` is the largest reported distance; ratio `mᵢ = (r*_k/r*_i)(1+ε)`.
pub fn topk_guarantee(distances: &[f64], epsilon: f64, alpha: usize) -> TopKGuarantee {
    let r_k = distances.iter().copied().fold(0.0f64, f64::max);
    let ratios: Vec<f64> = distances
        .iter()
        .map(|&r_i| {
            if r_i <= 0.0 {
                // An exact hit can only be missed with vanishing
                // probability; its ratio is effectively unbounded. Cap at
                // a large finite value to keep arithmetic clean.
                1e6
            } else {
                (r_k / r_i) * (1.0 + epsilon)
            }
        })
        .collect();
    TopKGuarantee {
        success_probability: bounds::topk_success_probability(&ratios, alpha),
        expected_misses: bounds::expected_misses(&ratios, alpha),
        ratios,
    }
}

/// Theorem 3's spill-in bound for the final query region: probability a
/// far point (distance ≥ `r*_k(1+ε)/(1−ε′)`) intrudes.
pub fn spill_in_bound(epsilon_prime: f64, alpha: usize) -> f64 {
    bounds::spill_in_bound(epsilon_prime, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarantee_fields_consistent() {
        let g = topk_guarantee(&[1.0, 2.0, 4.0], 3.0, 3);
        assert_eq!(g.ratios.len(), 3);
        // m for the farthest entity is exactly (1+ε).
        assert!((g.ratios[2] - 4.0).abs() < 1e-12);
        // m for the closest is (4/1)(1+3) = 16.
        assert!((g.ratios[0] - 16.0).abs() < 1e-12);
        assert!(g.success_probability > 0.0 && g.success_probability <= 1.0);
        assert!(g.expected_misses >= 0.0);
    }

    #[test]
    fn closer_entities_are_safer() {
        let g = topk_guarantee(&[1.0, 2.0, 4.0], 3.0, 3);
        // Larger ratio → smaller miss probability, so ratios descending in
        // distance order means guarantees are strongest for the closest.
        assert!(g.ratios[0] > g.ratios[1]);
        assert!(g.ratios[1] > g.ratios[2]);
    }

    #[test]
    fn bigger_epsilon_improves_success() {
        let small = topk_guarantee(&[1.0, 2.0, 3.0], 0.5, 3);
        let large = topk_guarantee(&[1.0, 2.0, 3.0], 4.0, 3);
        assert!(large.success_probability >= small.success_probability);
        assert!(large.expected_misses <= small.expected_misses);
    }

    #[test]
    fn zero_distance_gets_capped_ratio() {
        let g = topk_guarantee(&[0.0, 1.0], 3.0, 3);
        assert_eq!(g.ratios[0], 1e6);
        assert!(g.success_probability > 0.99);
    }

    #[test]
    fn empty_result_is_vacuously_safe() {
        let g = topk_guarantee(&[], 3.0, 3);
        assert_eq!(g.success_probability, 1.0);
        assert_eq!(g.expected_misses, 0.0);
    }
}
