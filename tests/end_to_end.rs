//! End-to-end pipeline tests: dataset generation → TransE training →
//! virtual-KG assembly → top-k and aggregate queries → index invariants.

use vkg::prelude::*;

fn fast_embed() -> TransEConfig {
    TransEConfig {
        dim: 16,
        epochs: 8,
        ..TransEConfig::default()
    }
}

#[test]
fn movie_pipeline_end_to_end() {
    let ds = movie_like(&MovieConfig::tiny());
    let vkg = vkg::build_from_dataset(&ds, fast_embed(), VkgConfig::default());

    let likes = vkg.graph().relation_id("likes").unwrap();
    let user = vkg.graph().entity_id("user_3").unwrap();

    let r = vkg.top_k(user, likes, Direction::Tails, 5).unwrap();
    assert!(!r.predictions.is_empty());
    // E′ semantics: no known edge may appear.
    for p in &r.predictions {
        assert!(!vkg.graph().has_edge(user, likes, EntityId(p.id)));
        assert_ne!(p.id, user.0);
    }
    // Ascending distances, probability 1 at the head of the list.
    for w in r.predictions.windows(2) {
        assert!(w[0].distance <= w[1].distance);
    }
    assert_eq!(r.predictions[0].probability, 1.0);
    vkg.index().check_invariants();
}

#[test]
fn amazon_pipeline_with_aggregates() {
    let ds = amazon_like(&AmazonConfig::tiny());
    let vkg = vkg::build_from_dataset(&ds, fast_embed(), VkgConfig::default());

    let likes = vkg.graph().relation_id("likes").unwrap();
    let user = vkg.graph().entity_id("user_1").unwrap();

    let count = vkg
        .aggregate(user, likes, Direction::Tails, &AggregateSpec::count(0.05))
        .unwrap();
    assert!(count.estimate >= 1.0);
    assert!(count.ball_size >= count.accessed);

    let avg = vkg
        .aggregate(
            user,
            likes,
            Direction::Tails,
            &AggregateSpec::of(AggregateKind::Avg, "quality", 0.05),
        )
        .unwrap();
    assert!(
        (1.0..=5.0).contains(&avg.estimate),
        "avg quality {} outside the rating scale",
        avg.estimate
    );
    vkg.index().check_invariants();
}

#[test]
fn freebase_pipeline_multi_relation() {
    let ds = freebase_like(&FreebaseConfig::tiny());
    let vkg = vkg::build_from_dataset(&ds, fast_embed(), VkgConfig::default());

    // Query across several distinct relation types with one index.
    let mut used = std::collections::HashSet::new();
    let triples: Vec<_> = ds.graph.triples().to_vec();
    let mut asked = 0;
    for t in triples {
        if asked >= 5 || !used.insert(t.relation) {
            continue;
        }
        asked += 1;
        let r = vkg.top_k(t.head, t.relation, Direction::Tails, 3).unwrap();
        assert!(r.predictions.len() <= 3);
        let h = vkg.top_k(t.tail, t.relation, Direction::Heads, 3).unwrap();
        assert!(h.predictions.len() <= 3);
    }
    assert_eq!(asked, 5, "expected five distinct relation types queried");
    vkg.index().check_invariants();
}

#[test]
fn index_converges_over_query_sequence() {
    let ds = movie_like(&MovieConfig::tiny());
    let vkg = vkg::build_from_dataset(&ds, fast_embed(), VkgConfig::default());
    let likes = vkg.graph().relation_id("likes").unwrap();

    let mut node_counts = Vec::new();
    for u in 0..20 {
        let user = vkg.graph().entity_id(&format!("user_{}", u % 10)).unwrap();
        let _ = vkg.top_k(user, likes, Direction::Tails, 5).unwrap();
        node_counts.push(vkg.index_node_count());
    }
    // Convergence (Figs. 9–11): late growth must be no larger than early.
    let early = node_counts[4] - node_counts[0];
    let late = node_counts[19] - node_counts[15];
    assert!(
        late <= early.max(1),
        "index kept growing: early {early}, late {late}"
    );
    vkg.index().check_invariants();
}

#[test]
fn topk_split_strategy_end_to_end() {
    let ds = movie_like(&MovieConfig::tiny());
    let cfg = VkgConfig {
        split_strategy: SplitStrategy::TopK { choices: 3 },
        ..VkgConfig::default()
    };
    let vkg = vkg::build_from_dataset(&ds, fast_embed(), cfg);
    let likes = vkg.graph().relation_id("likes").unwrap();
    for u in 0..6 {
        let user = vkg.graph().entity_id(&format!("user_{u}")).unwrap();
        let r = vkg.top_k(user, likes, Direction::Tails, 5).unwrap();
        assert!(r.predictions.len() <= 5);
    }
    vkg.index().check_invariants();
}

#[test]
fn guarantees_reported_and_sane() {
    let ds = movie_like(&MovieConfig::tiny());
    let vkg = vkg::build_from_dataset(&ds, fast_embed(), VkgConfig::default());
    let likes = vkg.graph().relation_id("likes").unwrap();
    let user = vkg.graph().entity_id("user_0").unwrap();
    let r = vkg.top_k(user, likes, Direction::Tails, 5).unwrap();
    let g = &r.guarantee;
    assert!(g.success_probability > 0.0 && g.success_probability <= 1.0);
    assert!(g.expected_misses >= 0.0 && g.expected_misses <= 5.0);
    assert_eq!(g.ratios.len(), r.predictions.len());
}
