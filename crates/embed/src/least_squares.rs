//! Alternating-least-squares translational embedding.
//!
//! Minimizes `Σ_{(h,r,t)∈E} ‖h + r − t‖²` (plus an anchor regularizer) by
//! coordinate descent instead of TransE's margin-SGD:
//!
//! * entity step — each entity moves to the (anchor-regularized) average
//!   of the positions its edges translate it to;
//! * relation step — each relation becomes the mean displacement
//!   `t − h` over its edges.
//!
//! No negative sampling and no learning rate, so a handful of sweeps
//! reaches a geometry where true triples are *tight* — the regime a
//! well-converged TransE run over a web-scale graph sits in. The
//! benchmark harness uses this to simulate converged embeddings (the
//! paper imports embeddings precomputed by the original TransE code; see
//! DESIGN.md §2): the index and query layers only ever see the resulting
//! vector geometry, never the trainer.
//!
//! The anchor regularizer (each entity is pulled toward a random anchor
//! drawn once at init) prevents connected components from collapsing to
//! a point and keeps unrelated entities spread out.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vkg_kg::KnowledgeGraph;

use crate::store::EmbeddingStore;

/// Hyper-parameters for [`least_squares_embedding`].
#[derive(Debug, Clone)]
pub struct LsConfig {
    /// Embedding dimensionality `d`.
    pub dim: usize,
    /// Number of alternating sweeps.
    pub sweeps: usize,
    /// Anchor pull λ: larger keeps entities closer to their random
    /// anchors (more spread, looser triples); smaller tightens triples.
    pub anchor_weight: f64,
    /// Scale of the random anchors (the cloud radius).
    pub anchor_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LsConfig {
    fn default() -> Self {
        // Tuned on the synthetic datasets so that a top-10 query ball
        // inflated by ε = 1 covers a small fraction (≈ 10–30%) of the
        // entities — the locality regime of a converged web-scale
        // embedding, which is what the index's figures depend on.
        Self {
            dim: 48,
            sweeps: 30,
            anchor_weight: 0.05,
            anchor_scale: 6.0,
            seed: 0x4c53_4551, // "LSEQ"
        }
    }
}

/// Runs the alternating least-squares embedding over all triples.
pub fn least_squares_embedding(graph: &KnowledgeGraph, cfg: &LsConfig) -> EmbeddingStore {
    assert!(cfg.dim > 0, "dimensionality must be positive");
    assert!(cfg.anchor_weight > 0.0, "anchor weight must be positive");
    let n = graph.num_entities();
    let m = graph.num_relations();
    let d = cfg.dim;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Anchors double as the initial entity positions.
    let mut anchors = vec![0.0f64; n * d];
    for v in &mut anchors {
        *v = rng.gen_range(-cfg.anchor_scale..cfg.anchor_scale);
    }
    let mut ent = anchors.clone();
    let mut rel = vec![0.0f64; m * d];
    for v in &mut rel {
        *v = rng.gen_range(-1.0..1.0);
    }

    let triples = graph.triples();
    let lambda = cfg.anchor_weight;

    for _ in 0..cfg.sweeps {
        // Relation step: T_r ← mean over edges of (t − h).
        let mut sums = vec![0.0f64; m * d];
        let mut counts = vec![0usize; m];
        for t in triples {
            let (hi, ri, ti) = (
                t.head.index() * d,
                t.relation.index() * d,
                t.tail.index() * d,
            );
            for j in 0..d {
                sums[ri + j] += ent[ti + j] - ent[hi + j];
            }
            counts[t.relation.index()] += 1;
        }
        for r in 0..m {
            if counts[r] > 0 {
                for j in 0..d {
                    rel[r * d + j] = sums[r * d + j] / counts[r] as f64;
                }
            }
        }

        // Entity step (Jacobi): e ← (Σ targets + λ·anchor) / (deg + λ).
        let mut acc = anchors.clone();
        for v in &mut acc {
            *v *= lambda;
        }
        let mut weight = vec![lambda; n];
        for t in triples {
            let (hi, ri, ti) = (
                t.head.index() * d,
                t.relation.index() * d,
                t.tail.index() * d,
            );
            for j in 0..d {
                // The tail pulls the head toward t − r; the head pulls the
                // tail toward h + r.
                acc[hi + j] += ent[ti + j] - rel[ri + j];
                acc[ti + j] += ent[hi + j] + rel[ri + j];
            }
            weight[t.head.index()] += 1.0;
            weight[t.tail.index()] += 1.0;
        }
        // Damped update: plain Jacobi oscillates on bipartite structures
        // (heads and tails swap positions each sweep); averaging with the
        // previous iterate restores convergence for any λ.
        const DAMPING: f64 = 0.5;
        for e in 0..n {
            for j in 0..d {
                let target = acc[e * d + j] / weight[e];
                ent[e * d + j] = (1.0 - DAMPING) * ent[e * d + j] + DAMPING * target;
            }
        }
    }

    EmbeddingStore::from_raw(d, ent, rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vkg_kg::EntityId;

    fn clustered_graph() -> KnowledgeGraph {
        // Two user groups, each liking its own block of items.
        let mut g = KnowledgeGraph::new();
        for group in 0..2 {
            for u in 0..6 {
                for m in 0..6 {
                    g.add_fact(&format!("u{group}_{u}"), "likes", &format!("m{group}_{m}"))
                        .unwrap();
                }
            }
        }
        g
    }

    #[test]
    fn triples_become_tight() {
        let g = clustered_graph();
        let store = least_squares_embedding(&g, &LsConfig::default());
        let likes = g.relation_id("likes").unwrap();
        // Distances for true edges must be well below the distance to the
        // other group's items.
        let u = g.entity_id("u0_0").unwrap();
        let own = g.entity_id("m0_0").unwrap();
        let other = g.entity_id("m1_0").unwrap();
        let d_own = store.triple_distance(u, likes, own);
        let d_other = store.triple_distance(u, likes, other);
        assert!(
            d_own * 2.0 < d_other,
            "edge distance {d_own} not well below cross-group {d_other}"
        );
    }

    #[test]
    fn strong_contrast_for_queries() {
        // The property the index needs: a query ball of radius
        // r_k(1 + ε) around h + r covers only a small fraction of all
        // entities.
        let g = clustered_graph();
        let store = least_squares_embedding(&g, &LsConfig::default());
        let likes = g.relation_id("likes").unwrap();
        let u = g.entity_id("u1_3").unwrap();
        let q = store.tail_query_point(u, likes);
        let mut dists: Vec<f64> = (0..store.num_entities() as u32)
            .map(|i| store.distance_to_entity(&q, EntityId(i)))
            .collect();
        dists.sort_by(|a, b| a.total_cmp(b));
        let r = dists[5] * 2.0; // k = 6 (the group size), ε = 1
        let covered = dists.iter().filter(|&&x| x <= r).count();
        assert!(
            covered <= store.num_entities() / 2,
            "ball covers {covered}/{} entities — no locality",
            store.num_entities()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = clustered_graph();
        let a = least_squares_embedding(&g, &LsConfig::default());
        let b = least_squares_embedding(&g, &LsConfig::default());
        assert_eq!(a, b);
        let c = least_squares_embedding(
            &g,
            &LsConfig {
                seed: 99,
                ..LsConfig::default()
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn zero_degree_entities_stay_at_anchor_scale() {
        let mut g = clustered_graph();
        g.add_entity("isolated");
        let cfg = LsConfig::default();
        let store = least_squares_embedding(&g, &cfg);
        let iso = g.entity_id("isolated").unwrap();
        let norm: f64 = store.entity(iso).iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm <= cfg.anchor_scale * (cfg.dim as f64).sqrt());
        assert!(norm > 0.0);
    }

    #[test]
    fn shapes_match_graph() {
        let g = clustered_graph();
        let store = least_squares_embedding(
            &g,
            &LsConfig {
                dim: 10,
                ..LsConfig::default()
            },
        );
        assert_eq!(store.num_entities(), g.num_entities());
        assert_eq!(store.num_relations(), g.num_relations());
        assert_eq!(store.dim(), 10);
    }

    #[test]
    fn empty_graph() {
        let g = KnowledgeGraph::new();
        let store = least_squares_embedding(&g, &LsConfig::default());
        assert_eq!(store.num_entities(), 0);
    }
}
