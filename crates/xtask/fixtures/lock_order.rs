// pretend: crates/core/src/engine/shard.rs
// Fixture for the lock-order rule: acquisitions are replayed against
// the DAG declared in crates/xtask/lockorder.toml (shard state before
// published before crack-log side structures), including acquisitions
// reached through calls while a guard is still live.

use vkg_sync::{Mutex, RwLock};

struct Shard {
    state: RwLock<u32>,
    crack_log: Mutex<Vec<u32>>,
    published: RwLock<u32>,
}

impl Shard {
    fn sanctioned_order(&self) {
        let s = self.state.write();
        let log = self.crack_log.lock();
        drop(log);
        drop(s);
    }

    fn inverted(&self) {
        let log = self.crack_log.lock();
        let s = self.state.write(); // expect: lock-order
        drop(s);
        drop(log);
    }

    fn held_through_call(&self) {
        let p = self.published.read();
        self.touch_state(); // expect: lock-order
        drop(p);
    }

    fn touch_state(&self) {
        let s = self.state.read();
        drop(s);
    }

    fn drop_ends_the_hold(&self) {
        let log = self.crack_log.lock();
        drop(log);
        let s = self.state.write();
        drop(s);
    }

    fn scope_ends_the_hold(&self) {
        {
            let log = self.crack_log.lock();
            log.len();
        }
        let s = self.state.write();
        drop(s);
    }
}
