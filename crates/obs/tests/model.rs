//! Model-checked properties of the span ring: across a ≥64-seed
//! schedule sweep, concurrent writers never produce a torn span, and
//! the dropped-span counter exactly accounts for every overflow.

#![cfg(feature = "model")]

use vkg_obs::{Span, SpanRing};
use vkg_sync::{model, thread, Arc};

const SEEDS: u64 = 64;

/// A span whose fields are all functions of its id, so any torn read
/// (fields from two different writes) is detectable.
fn stamped(id: u64) -> Span {
    Span {
        id,
        op: 1,
        shard: (id % 4) as u32,
        queue_ns: id.wrapping_mul(3),
        lock_ns: id.wrapping_mul(5),
        exec_ns: id.wrapping_mul(7),
        encode_ns: id.wrapping_mul(11),
        batch_ns: id.wrapping_mul(13),
        refine_steps: id,
        ..Span::default()
    }
}

fn assert_not_torn(s: &Span) {
    assert_eq!(s.queue_ns, s.id.wrapping_mul(3), "torn span: {s:?}");
    assert_eq!(s.lock_ns, s.id.wrapping_mul(5), "torn span: {s:?}");
    assert_eq!(s.exec_ns, s.id.wrapping_mul(7), "torn span: {s:?}");
    assert_eq!(s.encode_ns, s.id.wrapping_mul(11), "torn span: {s:?}");
    assert_eq!(s.batch_ns, s.id.wrapping_mul(13), "torn span: {s:?}");
    assert_eq!(s.refine_steps, s.id, "torn span: {s:?}");
}

/// Two writers race into a ring smaller than their combined output.
/// On every explored schedule: no live span is torn, every push is
/// recorded, and `recorded == live + dropped` balances exactly.
#[test]
fn swept_concurrent_pushes_never_tear_and_balance() {
    const WRITERS: u64 = 2;
    const PER_WRITER: u64 = 3;
    model::sweep(SEEDS, || {
        let ring = Arc::new(SpanRing::new(2));
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let ring = ring.clone();
                thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        ring.push(&stamped(w * 100 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer");
        }
        let live = ring.collect(usize::MAX);
        for s in &live {
            assert_not_torn(s);
        }
        assert_eq!(ring.recorded(), WRITERS * PER_WRITER);
        assert_eq!(
            ring.recorded(),
            live.len() as u64 + ring.dropped(),
            "accounting must balance at quiescence"
        );
    })
    .unwrap_or_else(|v| panic!("span ring flagged by the model checker: {v}"));
}

/// A reader snapshots *while* a writer is overwriting the ring: the
/// snapshot may miss in-flight spans but must never contain a torn one,
/// and must never panic or wedge.
#[test]
fn swept_reader_during_writes_sees_only_stable_spans() {
    model::sweep(SEEDS, || {
        let ring = Arc::new(SpanRing::new(2));
        ring.push(&stamped(1));
        let writer = {
            let ring = ring.clone();
            thread::spawn(move || {
                for id in 2..5 {
                    ring.push(&stamped(id));
                }
            })
        };
        for s in &ring.collect(usize::MAX) {
            assert_not_torn(s);
        }
        writer.join().expect("writer");
        for s in &ring.collect(usize::MAX) {
            assert_not_torn(s);
        }
    })
    .unwrap_or_else(|v| panic!("span ring reader flagged: {v}"));
}

/// Overflow accounting with no contention: pushing `capacity + k` spans
/// drops exactly `k`, under the model runtime as well as natively.
#[test]
fn swept_overflow_accounting_is_exact() {
    model::sweep(SEEDS, || {
        let ring = SpanRing::new(3);
        for id in 0..8 {
            assert!(ring.push(&stamped(id)), "uncontended push cannot fail");
        }
        assert_eq!(ring.recorded(), 8);
        assert_eq!(ring.dropped(), 5, "8 pushes into 3 slots drop exactly 5");
        let live = ring.collect(usize::MAX);
        assert_eq!(live.len(), 3);
        let ids: Vec<u64> = live.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![5, 6, 7], "the newest spans survive");
    })
    .unwrap_or_else(|v| panic!("overflow accounting flagged: {v}"));
}
