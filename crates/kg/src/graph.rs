//! The knowledge-graph triple store.
//!
//! A knowledge graph `G = (V, E)` is a directed graph whose edges are
//! `(head, relation, tail)` triples (paper §II). This module stores the
//! *materialized* edge set `E`; the predicted edges `E'` of the virtual
//! knowledge graph are never materialized — they are derived on demand by
//! the index and query layers.
//!
//! The store maintains per-entity adjacency lists (needed to *skip* known
//! edges when answering queries over `E'`, per the paper's default
//! semantics) and an exact membership set for `O(1)` `has_edge` checks.

use std::collections::HashSet;

use crate::error::{KgError, Result};
use crate::ids::{EntityId, Interner, RelationId};
use crate::stats::GraphStats;

/// A single `(head, relation, tail)` fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Head (subject) entity.
    pub head: EntityId,
    /// Relationship type.
    pub relation: RelationId,
    /// Tail (object) entity.
    pub tail: EntityId,
}

/// A directed, labelled multigraph of `(h, r, t)` triples.
///
/// Entities and relations are interned; all APIs work on dense ids.
#[derive(Debug, Default, Clone)]
pub struct KnowledgeGraph {
    entities: Interner,
    relations: Interner,
    triples: Vec<Triple>,
    out: Vec<Vec<(RelationId, EntityId)>>,
    inc: Vec<Vec<(RelationId, EntityId)>>,
    edge_set: HashSet<(u32, u32, u32)>,
}

impl KnowledgeGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns (or looks up) an entity by name.
    pub fn add_entity(&mut self, name: &str) -> EntityId {
        let id = self.entities.intern(name);
        while self.out.len() <= id as usize {
            self.out.push(Vec::new());
            self.inc.push(Vec::new());
        }
        EntityId(id)
    }

    /// Interns (or looks up) a relationship type by name.
    pub fn add_relation(&mut self, name: &str) -> RelationId {
        RelationId(self.relations.intern(name))
    }

    /// Adds the fact `(h, r, t)` to `E`. Duplicate facts are ignored.
    ///
    /// Returns `true` if the edge was new.
    pub fn add_triple(&mut self, h: EntityId, r: RelationId, t: EntityId) -> Result<bool> {
        self.check_entity(h)?;
        self.check_entity(t)?;
        self.check_relation(r)?;
        if !self.edge_set.insert((h.0, r.0, t.0)) {
            return Ok(false);
        }
        self.triples.push(Triple {
            head: h,
            relation: r,
            tail: t,
        });
        self.out[h.index()].push((r, t));
        self.inc[t.index()].push((r, h));
        Ok(true)
    }

    /// Convenience: intern the three names and add the triple.
    pub fn add_fact(&mut self, head: &str, relation: &str, tail: &str) -> Result<bool> {
        let h = self.add_entity(head);
        let r = self.add_relation(relation);
        let t = self.add_entity(tail);
        self.add_triple(h, r, t)
    }

    /// Whether `(h, r, t)` is a known (materialized) edge in `E`.
    #[inline]
    pub fn has_edge(&self, h: EntityId, r: RelationId, t: EntityId) -> bool {
        self.edge_set.contains(&(h.0, r.0, t.0))
    }

    /// Removes `(h, r, t)` from `E` if present, returning whether it existed.
    ///
    /// Used to mask edges for link-prediction style evaluation (paper §VI-B:
    /// "we randomly mask 5 edges from our datasets").
    pub fn remove_triple(&mut self, h: EntityId, r: RelationId, t: EntityId) -> bool {
        if !self.edge_set.remove(&(h.0, r.0, t.0)) {
            return false;
        }
        self.triples
            .retain(|tr| !(tr.head == h && tr.relation == r && tr.tail == t));
        self.out[h.index()].retain(|&(rr, tt)| !(rr == r && tt == t));
        self.inc[t.index()].retain(|&(rr, hh)| !(rr == r && hh == h));
        true
    }

    /// Tails `t` such that `(h, r, t) ∈ E`.
    pub fn tails(&self, h: EntityId, r: RelationId) -> impl Iterator<Item = EntityId> + '_ {
        self.out
            .get(h.index())
            .into_iter()
            .flatten()
            .filter(move |(rr, _)| *rr == r)
            .map(|&(_, t)| t)
    }

    /// Heads `h` such that `(h, r, t) ∈ E`.
    pub fn heads(&self, t: EntityId, r: RelationId) -> impl Iterator<Item = EntityId> + '_ {
        self.inc
            .get(t.index())
            .into_iter()
            .flatten()
            .filter(move |(rr, _)| *rr == r)
            .map(|&(_, h)| h)
    }

    /// All outgoing `(relation, tail)` pairs of `h`.
    pub fn out_edges(&self, h: EntityId) -> &[(RelationId, EntityId)] {
        self.out.get(h.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All incoming `(relation, head)` pairs of `t`.
    pub fn in_edges(&self, t: EntityId) -> &[(RelationId, EntityId)] {
        self.inc.get(t.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total degree (in + out) of an entity — the paper's `popularity`
    /// attribute for the Freebase MAX-query experiment (Fig. 15).
    pub fn degree(&self, e: EntityId) -> usize {
        self.out_edges(e).len() + self.in_edges(e).len()
    }

    /// All triples in insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of relationship types.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Number of edges in `E`.
    pub fn num_edges(&self) -> usize {
        self.triples.len()
    }

    /// Name of an entity.
    pub fn entity_name(&self, e: EntityId) -> Option<&str> {
        self.entities.name(e.0)
    }

    /// Name of a relationship type.
    pub fn relation_name(&self, r: RelationId) -> Option<&str> {
        self.relations.name(r.0)
    }

    /// Id of an entity by name.
    pub fn entity_id(&self, name: &str) -> Option<EntityId> {
        self.entities.get(name).map(EntityId)
    }

    /// Id of a relationship type by name.
    pub fn relation_id(&self, name: &str) -> Option<RelationId> {
        self.relations.get(name).map(RelationId)
    }

    /// Summary statistics (Table I of the paper).
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            entities: self.num_entities(),
            relation_types: self.num_relations(),
            edges: self.num_edges(),
        }
    }

    fn check_entity(&self, e: EntityId) -> Result<()> {
        if e.index() < self.entities.len() {
            Ok(())
        } else {
            Err(KgError::UnknownEntity(e.0))
        }
    }

    fn check_relation(&self, r: RelationId) -> Result<()> {
        if r.index() < self.relations.len() {
            Ok(())
        } else {
            Err(KgError::UnknownRelation(r.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> KnowledgeGraph {
        let mut g = KnowledgeGraph::new();
        g.add_fact("amy", "rates_high", "restaurant_1").unwrap();
        g.add_fact("bob", "rates_high", "restaurant_1").unwrap();
        g.add_fact("amy", "frequents", "grocery_1").unwrap();
        g.add_fact("restaurant_1", "belongs_to", "italian").unwrap();
        g
    }

    #[test]
    fn counts() {
        let g = toy();
        // amy, bob, restaurant_1, grocery_1, italian
        assert_eq!(g.num_entities(), 5);
        assert_eq!(g.num_relations(), 3);
        assert_eq!(g.num_edges(), 4);
        let s = g.stats();
        assert_eq!((s.entities, s.relation_types, s.edges), (5, 3, 4));
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = toy();
        assert!(!g.add_fact("amy", "rates_high", "restaurant_1").unwrap());
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn adjacency_queries() {
        let g = toy();
        let amy = g.entity_id("amy").unwrap();
        let r1 = g.entity_id("restaurant_1").unwrap();
        let rates = g.relation_id("rates_high").unwrap();
        assert!(g.has_edge(amy, rates, r1));
        assert!(!g.has_edge(r1, rates, amy));
        let tails: Vec<_> = g.tails(amy, rates).collect();
        assert_eq!(tails, vec![r1]);
        let heads: Vec<_> = g.heads(r1, rates).collect();
        assert_eq!(heads.len(), 2);
    }

    #[test]
    fn degree_counts_both_directions() {
        let g = toy();
        let r1 = g.entity_id("restaurant_1").unwrap();
        // two incoming rates_high + one outgoing belongs_to
        assert_eq!(g.degree(r1), 3);
    }

    #[test]
    fn remove_triple_masks_edge() {
        let mut g = toy();
        let amy = g.entity_id("amy").unwrap();
        let r1 = g.entity_id("restaurant_1").unwrap();
        let rates = g.relation_id("rates_high").unwrap();
        assert!(g.remove_triple(amy, rates, r1));
        assert!(!g.has_edge(amy, rates, r1));
        assert!(!g.remove_triple(amy, rates, r1));
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.tails(amy, rates).count(), 0);
        assert_eq!(g.heads(r1, rates).count(), 1);
    }

    #[test]
    fn unknown_ids_rejected() {
        let mut g = toy();
        let bad = EntityId(999);
        let r = g.relation_id("rates_high").unwrap();
        let ok = g.entity_id("amy").unwrap();
        assert!(matches!(
            g.add_triple(bad, r, ok),
            Err(KgError::UnknownEntity(999))
        ));
        assert!(matches!(
            g.add_triple(ok, RelationId(77), ok),
            Err(KgError::UnknownRelation(77))
        ));
    }

    #[test]
    fn edges_of_missing_entity_are_empty() {
        let g = toy();
        assert!(g.out_edges(EntityId(500)).is_empty());
        assert!(g.in_edges(EntityId(500)).is_empty());
    }
}
