//! Property-based tests for the baselines: the PH-tree must agree with
//! brute force; H2-ALSH's partitioning must be a valid cover; the linear
//! scan is the definitional ground truth.

use proptest::prelude::*;
use vkg_baselines::{H2Alsh, H2AlshConfig, PhTree};

fn arb_matrix(max_rows: usize, dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, dim..=max_rows * dim).prop_map(move |mut v| {
        v.truncate(v.len() / dim * dim);
        v
    })
}

fn brute_nn(data: &[f64], dim: usize, q: &[f64]) -> (u32, f64) {
    let mut best = (0u32, f64::INFINITY);
    for (i, row) in data.chunks_exact(dim).enumerate() {
        let d: f64 = row.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum();
        if d < best.1 {
            best = (i as u32, d);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PH-tree nearest neighbour matches brute force up to quantization
    /// ties (distances equal within one quantum in each dimension).
    #[test]
    fn phtree_nearest_matches_brute(
        data in arb_matrix(60, 3),
        q in prop::collection::vec(-12.0f64..12.0, 3),
    ) {
        let tree = PhTree::build(data.clone(), 3);
        let got = tree.top_k(&q, 1, |_| false);
        prop_assert_eq!(got.len(), 1.min(data.len() / 3));
        if let Some(&(id, dist)) = got.first() {
            let (bid, bdist) = brute_nn(&data, 3, &q);
            // Either the same id, or an equally close point (quantization
            // can flip exact ties).
            prop_assert!(
                id == bid || (dist * dist - bdist).abs() < 1e-6,
                "tree picked {id} at {dist}, brute {bid} at {}",
                bdist.sqrt()
            );
        }
    }

    /// PH-tree results are sorted and k-bounded with all ids valid.
    #[test]
    fn phtree_results_well_formed(data in arb_matrix(80, 2), k in 0usize..12) {
        let n = data.len() / 2;
        let tree = PhTree::build(data, 2);
        let r = tree.top_k(&[0.0, 0.0], k, |_| false);
        prop_assert!(r.len() <= k.min(n));
        for w in r.windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-9);
        }
        let mut ids: Vec<u32> = r.iter().map(|x| x.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), r.len(), "duplicate ids in result");
        prop_assert!(ids.iter().all(|&i| (i as usize) < n));
    }

    /// H2-ALSH's homocentric partitions cover every item exactly once
    /// and respect the norm-ratio contract.
    #[test]
    fn h2alsh_partition_cover(data in arb_matrix(60, 4), ratio in 0.5f64..0.95) {
        let n = data.len() / 4;
        let cfg = H2AlshConfig {
            norm_ratio: ratio,
            ..H2AlshConfig::default()
        };
        let idx = H2Alsh::build(data, 4, cfg);
        prop_assert_eq!(idx.len(), n);
        if n > 0 {
            prop_assert!(idx.num_partitions() >= 1);
            prop_assert!(idx.num_partitions() <= n);
        }
    }

    /// H2-ALSH never returns skipped ids, never duplicates, and orders
    /// results by descending inner product.
    #[test]
    fn h2alsh_results_well_formed(
        data in arb_matrix(50, 3),
        q in prop::collection::vec(-5.0f64..5.0, 3),
        banned in 0u32..50,
    ) {
        let n = data.len() / 3;
        let idx = H2Alsh::build(data, 3, H2AlshConfig::default());
        let r = idx.top_k_mips(&q, 5, |id| id == banned);
        prop_assert!(r.iter().all(|x| x.0 != banned));
        for w in r.windows(2) {
            prop_assert!(w[0].1 >= w[1].1 - 1e-9);
        }
        let mut ids: Vec<u32> = r.iter().map(|x| x.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), r.len());
        prop_assert!(ids.iter().all(|&i| (i as usize) < n));
    }
}
