//! MovieLens-like dataset generator.
//!
//! Entities: users, movies, genres, tags. Relationship types (paper §VI-A):
//! `likes` (rating ≥ 4.0), `dislikes` (rating ≤ 2.0), `has_genre`,
//! `has_tag`. Ratings come from a latent-factor model — each user and
//! movie draws a latent taste vector, the rating is a noisy rescaled dot
//! product — so the resulting bipartite structure has real low-rank
//! geometry for the embedding to discover. Movie selection per user is
//! Zipfian (blockbusters get most ratings), matching real MovieLens skew.
//!
//! Attributes: `year` on movies (the AVG/MIN experiments, Figs. 13/16),
//! `age` on users.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{to_star_rating, Dataset};
use crate::attributes::AttributeStore;
use crate::graph::KnowledgeGraph;
use crate::zipf::Zipf;

/// Configuration for [`movie_like`].
#[derive(Debug, Clone)]
pub struct MovieConfig {
    /// Number of user entities.
    pub users: usize,
    /// Number of movie entities.
    pub movies: usize,
    /// Number of genre entities.
    pub genres: usize,
    /// Number of tag entities.
    pub tags: usize,
    /// Mean ratings authored per user.
    pub ratings_per_user: usize,
    /// Dimensionality of the latent taste vectors.
    pub latent_dim: usize,
    /// Zipf exponent for movie popularity.
    pub zipf_exponent: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for MovieConfig {
    fn default() -> Self {
        Self {
            users: 3_000,
            movies: 5_000,
            genres: 20,
            tags: 200,
            ratings_per_user: 40,
            latent_dim: 8,
            zipf_exponent: 1.1,
            seed: 0x4d4f5649, // "MOVI"
        }
    }
}

impl MovieConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            users: 60,
            movies: 120,
            genres: 6,
            tags: 15,
            ratings_per_user: 8,
            ..Self::default()
        }
    }

    /// Scales the entity counts by `factor` (used by the benchmark sweeps).
    pub fn scaled(factor: f64) -> Self {
        let d = Self::default();
        Self {
            users: ((d.users as f64) * factor).max(10.0) as usize,
            movies: ((d.movies as f64) * factor).max(20.0) as usize,
            tags: ((d.tags as f64) * factor.sqrt()).max(5.0) as usize,
            ..d
        }
    }
}

fn latent<R: Rng>(rng: &mut R, dim: usize) -> Vec<f64> {
    let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
    v.into_iter().map(|x| x / norm).collect()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Generates a MovieLens-like dataset.
pub fn movie_like(cfg: &MovieConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut graph = KnowledgeGraph::new();
    let mut attrs = AttributeStore::new();

    let likes = graph.add_relation("likes");
    let dislikes = graph.add_relation("dislikes");
    let has_genre = graph.add_relation("has_genre");
    let has_tag = graph.add_relation("has_tag");

    let users: Vec<_> = (0..cfg.users)
        .map(|i| graph.add_entity(&format!("user_{i}")))
        .collect();
    let movies: Vec<_> = (0..cfg.movies)
        .map(|i| graph.add_entity(&format!("movie_{i}")))
        .collect();
    let genres: Vec<_> = (0..cfg.genres)
        .map(|i| graph.add_entity(&format!("genre_{i}")))
        .collect();
    let tags: Vec<_> = (0..cfg.tags)
        .map(|i| graph.add_entity(&format!("tag_{i}")))
        .collect();

    // Attributes.
    for &u in &users {
        attrs.set("age", u, rng.gen_range(18.0f64..80.0).round());
    }
    for &m in &movies {
        attrs.set("year", m, rng.gen_range(1930.0f64..2024.0).round());
    }

    // Latent taste vectors.
    let user_latent: Vec<Vec<f64>> = users
        .iter()
        .map(|_| latent(&mut rng, cfg.latent_dim))
        .collect();
    let movie_latent: Vec<Vec<f64>> = movies
        .iter()
        .map(|_| latent(&mut rng, cfg.latent_dim))
        .collect();

    // Genres/tags cluster in latent space: assign each movie the genre whose
    // anchor is nearest, plus a couple of Zipf-sampled tags.
    let genre_anchor: Vec<Vec<f64>> = genres
        .iter()
        .map(|_| latent(&mut rng, cfg.latent_dim))
        .collect();
    let tag_zipf = Zipf::new(cfg.tags.max(1), 1.0);
    for (mi, &m) in movies.iter().enumerate() {
        let best = genre_anchor
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                dot(a, &movie_latent[mi])
                    .partial_cmp(&dot(b, &movie_latent[mi]))
                    // lint: allow(no-unwrap, dot products of finite latent vectors are never NaN)
                    .expect("finite dot products")
            })
            .map(|(gi, _)| gi)
            .unwrap_or(0);
        graph
            .add_triple(m, has_genre, genres[best])
            // lint: allow(no-unwrap, both endpoints were just added to this graph by the generator)
            .expect("generated ids are valid");
        if !tags.is_empty() {
            let ntags = rng.gen_range(0..3);
            for _ in 0..ntags {
                let t = tags[tag_zipf.sample(&mut rng)];
                graph
                    .add_triple(m, has_tag, t)
                    // lint: allow(no-unwrap, both endpoints were just added to this graph by the generator)
                    .expect("generated ids are valid");
            }
        }
    }

    // Ratings: Zipf-skewed movie selection; latent dot product + noise.
    let movie_zipf = Zipf::new(cfg.movies, cfg.zipf_exponent);
    for (ui, &u) in users.iter().enumerate() {
        let n = rng.gen_range(cfg.ratings_per_user / 2..=cfg.ratings_per_user * 3 / 2);
        for _ in 0..n.max(1) {
            let mi = movie_zipf.sample(&mut rng);
            let score = dot(&user_latent[ui], &movie_latent[mi]) + rng.gen_range(-0.25..0.25);
            let stars = to_star_rating(score);
            if stars >= 4.0 {
                graph
                    .add_triple(u, likes, movies[mi])
                    // lint: allow(no-unwrap, both endpoints were just added to this graph by the generator)
                    .expect("generated ids are valid");
            } else if stars <= 2.0 {
                graph
                    .add_triple(u, dislikes, movies[mi])
                    // lint: allow(no-unwrap, both endpoints were just added to this graph by the generator)
                    .expect("generated ids are valid");
            }
        }
    }

    Dataset {
        name: "movie-like".to_owned(),
        graph,
        attributes: attrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_four_relation_types() {
        let ds = movie_like(&MovieConfig::tiny());
        assert_eq!(ds.graph.num_relations(), 4);
        for r in ["likes", "dislikes", "has_genre", "has_tag"] {
            assert!(ds.graph.relation_id(r).is_some(), "missing relation {r}");
        }
    }

    #[test]
    fn entity_counts_match_config() {
        let cfg = MovieConfig::tiny();
        let ds = movie_like(&cfg);
        assert_eq!(
            ds.graph.num_entities(),
            cfg.users + cfg.movies + cfg.genres + cfg.tags
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = movie_like(&MovieConfig::tiny());
        let b = movie_like(&MovieConfig::tiny());
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.graph.triples(), b.graph.triples());
    }

    #[test]
    fn different_seed_differs() {
        let a = movie_like(&MovieConfig::tiny());
        let mut cfg = MovieConfig::tiny();
        cfg.seed += 1;
        let b = movie_like(&cfg);
        assert_ne!(a.graph.triples(), b.graph.triples());
    }

    #[test]
    fn attributes_present() {
        let ds = movie_like(&MovieConfig::tiny());
        let u = ds.graph.entity_id("user_0").unwrap();
        let m = ds.graph.entity_id("movie_0").unwrap();
        let age = ds.attributes.get("age", u).unwrap().unwrap();
        assert!((18.0..=80.0).contains(&age));
        let year = ds.attributes.get("year", m).unwrap().unwrap();
        assert!((1930.0..=2024.0).contains(&year));
        // A movie has no age, a user no year.
        assert_eq!(ds.attributes.get("age", m).unwrap(), None);
        assert_eq!(ds.attributes.get("year", u).unwrap(), None);
    }

    #[test]
    fn every_movie_has_a_genre() {
        let ds = movie_like(&MovieConfig::tiny());
        let has_genre = ds.graph.relation_id("has_genre").unwrap();
        for m in ds.entities_with_prefix("movie_") {
            assert_eq!(ds.graph.tails(m, has_genre).count(), 1);
        }
    }

    #[test]
    fn likes_edges_exist_and_are_user_to_movie() {
        let ds = movie_like(&MovieConfig::tiny());
        let likes = ds.graph.relation_id("likes").unwrap();
        let mut count = 0;
        for t in ds.graph.triples() {
            if t.relation == likes {
                count += 1;
                assert!(ds.graph.entity_name(t.head).unwrap().starts_with("user_"));
                assert!(ds.graph.entity_name(t.tail).unwrap().starts_with("movie_"));
            }
        }
        assert!(count > 0, "no likes edges generated");
    }

    #[test]
    fn popularity_is_skewed() {
        // Zipf selection should concentrate ratings on low-index movies.
        let ds = movie_like(&MovieConfig::default());
        let first = ds.graph.degree(ds.graph.entity_id("movie_0").unwrap());
        let deep = ds.graph.degree(
            ds.graph
                .entity_id(&format!("movie_{}", MovieConfig::default().movies - 1))
                .unwrap(),
        );
        assert!(
            first > deep,
            "expected head movie degree ({first}) > tail movie degree ({deep})"
        );
    }
}
