//! Workspace call graph and the two analyses that run over it:
//!
//! * **Lock-order extraction.** Each function body is replayed with an
//!   abstract held-lock set (guards bound by `let` live to their block
//!   or an explicit `drop`; temporaries die at the statement's `;`).
//!   Calling a function adds every lock class that callee can acquire
//!   transitively, so `holding crack_log; self.write_shard(i)` yields
//!   the edge `vkg.cracklog → vkg.shard` with the full static
//!   acquisition path. Guard-*returning* callees (`write_shard`,
//!   `lock_all`) additionally leave their classes held in the caller.
//!   Every observed edge is checked against the declared DAG
//!   ([`crate::model::LockConfig`]).
//!
//! * **Request-path panic reachability.** BFS from the declared entry
//!   points over the call graph, restricted to the audit scope; every
//!   panic source in a reachable function is reported with the call
//!   chain that reaches it.
//!
//! Approximations (deliberate, documented in DESIGN.md §3.7): calls
//! resolve by bare name — uniquely for the lock analysis (an ambiguous
//! name contributes no edges) and to *all* candidates for the panic
//! audit (over-approximate, so a miss needs a justified allow, never
//! silence). Closure bodies are scanned as part of the enclosing
//! function but run with the caller's held-set at the closure's
//! *definition* site, not its call site.

use std::collections::{HashMap, HashSet};

use crate::model::LockConfig;
use crate::parser::{Event, FileModel, PanicKind, TokKind};

/// A lock-order violation: acquiring `to` while holding `from`.
#[derive(Debug)]
pub struct LockViolation {
    pub file: String,
    pub line: usize,
    pub at: usize,
    /// Class already held.
    pub from: String,
    /// Class being acquired against the declared order.
    pub to: String,
    /// Static acquisition path, starting at the function holding
    /// `from` and ending where `to` is acquired.
    pub path: Vec<String>,
}

/// A panic source reachable from a request-path entry point.
#[derive(Debug)]
pub struct ReachablePanic {
    pub file: String,
    pub line: usize,
    pub at: usize,
    pub kind: PanicKind,
    pub what: String,
    /// Call chain from the entry point to the containing function.
    pub chain: Vec<String>,
}

/// Result of both graph analyses.
#[derive(Debug, Default)]
pub struct Analysis {
    pub lock_violations: Vec<LockViolation>,
    pub panics: Vec<ReachablePanic>,
}

/// Global function id: (file index, fn index).
type FnId = (usize, usize);

struct Graph<'a> {
    files: &'a [FileModel],
    /// name → every non-test function with that name.
    by_name: HashMap<&'a str, Vec<FnId>>,
    /// Per-file set of identifier texts, for the visibility gate.
    idents: Vec<HashSet<&'a str>>,
}

impl<'a> Graph<'a> {
    fn build(files: &'a [FileModel]) -> Self {
        let mut by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        let mut idents = Vec::with_capacity(files.len());
        for (fi, fm) in files.iter().enumerate() {
            for (gi, f) in fm.fns.iter().enumerate() {
                if !f.is_test {
                    by_name.entry(f.name.as_str()).or_default().push((fi, gi));
                }
            }
            idents.push(
                fm.toks
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| &fm.code[t.start..t.end])
                    .collect(),
            );
        }
        Graph {
            files,
            by_name,
            idents,
        }
    }

    fn fun(&self, id: FnId) -> &'a crate::parser::FnItem {
        &self.files[id.0].fns[id.1]
    }

    /// The visibility gate against name-collision false edges: a
    /// cross-file call may resolve to a *method* only if the method's
    /// `impl` type is mentioned somewhere in the caller's file (as an
    /// import, field type, or expression). Without this, `runs.pop()`
    /// on a plain `Vec` would resolve to `JobQueue::pop` merely because
    /// that is the workspace's only *defined* `pop`. Same-file
    /// candidates and free functions are always visible.
    fn visible(&self, from_file: usize, callee: FnId) -> bool {
        if from_file == callee.0 {
            return true;
        }
        match &self.fun(callee).impl_ty {
            Some(ty) => self.idents[from_file].contains(ty.as_str()),
            None => true,
        }
    }

    /// Unique resolution (lock analysis): `None` when the name is
    /// undefined or ambiguous among the candidates visible from
    /// `from_file`.
    fn resolve_unique(&self, from_file: usize, name: &str) -> Option<FnId> {
        let all = self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[]);
        let mut vis = all.iter().filter(|c| self.visible(from_file, **c));
        match (vis.next(), vis.next()) {
            (Some(one), None) => Some(*one),
            _ => None,
        }
    }

    /// Conservative resolution (panic audit): every visible candidate.
    fn resolve_all(&self, from_file: usize, name: &str) -> Vec<FnId> {
        self.by_name
            .get(name)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .filter(|c| self.visible(from_file, **c))
            .copied()
            .collect()
    }
}

/// How a function comes to acquire a lock class: directly at a line, or
/// through a (uniquely-resolved) callee.
#[derive(Clone, Copy)]
enum Via {
    Direct(usize),
    Call(FnId),
}

/// Per-function lock summary, computed to a fixpoint.
#[derive(Default)]
struct Summary {
    /// class → how this function (transitively) acquires it.
    acquires: HashMap<usize, Via>,
    /// Classes still held when the function returns (guard-returning
    /// functions only).
    holds_on_return: Vec<usize>,
}

/// Runs both analyses over the parsed workspace.
pub fn analyze(files: &[FileModel], cfg: &LockConfig) -> Analysis {
    let graph = Graph::build(files);
    let summaries = lock_summaries(&graph, cfg);
    let mut out = Analysis::default();
    lock_replay(&graph, cfg, &summaries, &mut out);
    panic_reachability(&graph, cfg, &mut out);
    out
}

fn lock_summaries(graph: &Graph<'_>, cfg: &LockConfig) -> HashMap<FnId, Summary> {
    let mut sums: HashMap<FnId, Summary> = HashMap::new();
    for ids in graph.by_name.values() {
        for &id in ids {
            sums.insert(id, Summary::default());
        }
    }
    // Fixpoint: tiny graph, so iterate until nothing changes.
    loop {
        let mut changed = false;
        for ids in graph.by_name.values() {
            for &id in ids {
                let f = graph.fun(id);
                let mut acquires: Vec<(usize, Via)> = Vec::new();
                let mut holds: Vec<usize> = Vec::new();
                for ev in &f.events {
                    match ev {
                        Event::Acquire {
                            field, line, depth, ..
                        } => {
                            if let Some(class) = cfg.class_of_field(field) {
                                acquires.push((class, Via::Direct(*line)));
                                if f.returns_guard && *depth == 1 && !holds.contains(&class) {
                                    holds.push(class);
                                }
                            }
                        }
                        Event::Call { name, depth, .. } => {
                            if let Some(callee) = graph.resolve_unique(id.0, name) {
                                let cs = &sums[&callee];
                                for &class in cs.acquires.keys() {
                                    acquires.push((class, Via::Call(callee)));
                                }
                                if f.returns_guard && *depth == 1 {
                                    for &class in &cs.holds_on_return {
                                        if !holds.contains(&class) {
                                            holds.push(class);
                                        }
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
                let s = sums.get_mut(&id).expect("pre-seeded");
                for (class, via) in acquires {
                    if let std::collections::hash_map::Entry::Vacant(e) = s.acquires.entry(class) {
                        e.insert(via);
                        changed = true;
                    }
                }
                holds.sort_unstable();
                if s.holds_on_return != holds {
                    s.holds_on_return = holds;
                    changed = true;
                }
            }
        }
        if !changed {
            return sums;
        }
    }
}

/// Reconstructs how `id` acquires `class`: the chain of qualified names
/// ending at the direct acquisition site.
fn witness_chain(
    graph: &Graph<'_>,
    sums: &HashMap<FnId, Summary>,
    mut id: FnId,
    class: usize,
) -> Vec<String> {
    let mut chain = Vec::new();
    for _ in 0..32 {
        chain.push(graph.fun(id).qname());
        match sums[&id].acquires.get(&class) {
            Some(Via::Direct(line)) => {
                let last = chain.len() - 1;
                chain[last] = format!("{} (acquires at line {line})", chain[last]);
                return chain;
            }
            Some(Via::Call(callee)) => id = *callee,
            None => return chain,
        }
    }
    chain
}

/// One abstractly-held guard during replay.
struct Held {
    class: usize,
    var: Option<String>,
    depth: usize,
    /// Temporary: dies at the statement's `;`.
    temp: bool,
    /// Path suffix describing how it was acquired (for reporting).
    how: String,
}

fn lock_replay(
    graph: &Graph<'_>,
    cfg: &LockConfig,
    sums: &HashMap<FnId, Summary>,
    out: &mut Analysis,
) {
    for (fi, fm) in graph.files.iter().enumerate() {
        for f in fm.fns.iter() {
            if f.is_test {
                continue;
            }
            let mut held: Vec<Held> = Vec::new();
            let mut edge =
                |held: &[Held], to: usize, line: usize, at: usize, path_tail: Vec<String>| {
                    for h in held {
                        if cfg.allows(h.class, to) {
                            continue;
                        }
                        let mut path = vec![format!("{} ({})", f.qname(), h.how)];
                        path.extend(path_tail.iter().cloned());
                        out.lock_violations.push(LockViolation {
                            file: fm.path.clone(),
                            line,
                            at,
                            from: cfg.classes[h.class].name.clone(),
                            to: cfg.classes[to].name.clone(),
                            path,
                        });
                    }
                };
            for ev in &f.events {
                match ev {
                    Event::Acquire {
                        field,
                        method,
                        var,
                        line,
                        at,
                        depth,
                    } => {
                        let Some(class) = cfg.class_of_field(field) else {
                            continue;
                        };
                        edge(
                            &held,
                            class,
                            *line,
                            *at,
                            vec![format!("{}.{method}() at line {line}", field)],
                        );
                        held.push(Held {
                            class,
                            var: var.clone(),
                            depth: *depth,
                            temp: var.is_none(),
                            how: format!(
                                "holds {} via .{method}() at line {line}",
                                cfg.classes[class].name
                            ),
                        });
                    }
                    Event::Call {
                        name,
                        var,
                        arg,
                        line,
                        at,
                        depth,
                    } => {
                        if name == "drop" {
                            if let Some(a) = arg {
                                held.retain(|h| h.var.as_deref() != Some(a.as_str()));
                            }
                            continue;
                        }
                        let Some(callee) = graph.resolve_unique(fi, name) else {
                            continue;
                        };
                        let cs = &sums[&callee];
                        let mut classes: Vec<usize> = cs.acquires.keys().copied().collect();
                        classes.sort_unstable();
                        for class in classes {
                            edge(
                                &held,
                                class,
                                *line,
                                *at,
                                witness_chain(graph, sums, callee, class),
                            );
                        }
                        for &class in &cs.holds_on_return {
                            held.push(Held {
                                class,
                                var: var.clone(),
                                depth: *depth,
                                temp: var.is_none(),
                                how: format!(
                                    "holds {} via {}() at line {line}",
                                    cfg.classes[class].name,
                                    graph.fun(callee).qname()
                                ),
                            });
                        }
                    }
                    Event::StmtEnd { depth } => held.retain(|h| !(h.temp && h.depth >= *depth)),
                    Event::Close { depth } => held.retain(|h| h.depth < *depth),
                    Event::Panic { .. } => {}
                }
            }
        }
    }
    // One report per (site, edge): the replay can visit a call that
    // produces the same violation through several held guards.
    out.lock_violations
        .sort_by(|a, b| (&a.file, a.line, &a.from, &a.to).cmp(&(&b.file, b.line, &b.from, &b.to)));
    out.lock_violations
        .dedup_by(|a, b| a.file == b.file && a.line == b.line && a.from == b.from && a.to == b.to);
}

fn panic_reachability(graph: &Graph<'_>, cfg: &LockConfig, out: &mut Analysis) {
    // BFS from entries, staying inside the audit scope.
    let mut pred: HashMap<FnId, Option<FnId>> = HashMap::new();
    let mut queue: Vec<FnId> = Vec::new();
    for (fi, fm) in graph.files.iter().enumerate() {
        if !cfg.in_scope(&fm.path) {
            continue;
        }
        for (gi, f) in fm.fns.iter().enumerate() {
            if !f.is_test && cfg.is_entry(&fm.path, &f.name) {
                pred.insert((fi, gi), None);
                queue.push((fi, gi));
            }
        }
    }
    let mut qi = 0usize;
    while qi < queue.len() {
        let id = queue[qi];
        qi += 1;
        for ev in &graph.fun(id).events {
            if let Event::Call { name, .. } = ev {
                for callee in graph.resolve_all(id.0, name) {
                    if cfg.in_scope(&graph.files[callee.0].path) && !pred.contains_key(&callee) {
                        pred.insert(callee, Some(id));
                        queue.push(callee);
                    }
                }
            }
        }
    }
    for &id in &queue {
        let f = graph.fun(id);
        // Entry → … → f, for the finding message.
        let mut chain = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            chain.push(graph.fun(c).qname());
            cur = pred[&c].map(Some).unwrap_or(None);
            if chain.len() > 32 {
                break;
            }
        }
        chain.reverse();
        for ev in &f.events {
            if let Event::Panic {
                kind,
                what,
                line,
                at,
                ..
            } = ev
            {
                out.panics.push(ReachablePanic {
                    file: graph.files[id.0].path.clone(),
                    line: *line,
                    at: *at,
                    kind: *kind,
                    what: what.clone(),
                    chain: chain.clone(),
                });
            }
        }
    }
    out.panics
        .sort_by(|a, b| (&a.file, a.line, a.at).cmp(&(&b.file, b.line, b.at)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;
    use crate::model::parse_config;
    use crate::parser::parse;

    fn cfg() -> LockConfig {
        parse_config(
            "[[class]]\nname = \"vkg.shard\"\nfields = [\"state\"]\nself_nest = true\n\
             before = [\"vkg.published\", \"vkg.cracklog\"]\n\
             [[class]]\nname = \"vkg.published\"\nfields = [\"published\"]\n\
             [[class]]\nname = \"vkg.cracklog\"\nfields = [\"crack_log\"]\n\
             [request_path]\nentries = [\"worker_loop\"]\n\
             entry_files = [\"crates/server/src/server.rs\"]\n\
             scope = [\"crates/server/src/\", \"crates/core/src/engine/\"]\n",
        )
        .expect("test config")
    }

    fn run(path: &str, src: &str) -> Analysis {
        let m = parse(path, &scrub(src).code);
        analyze(&[m], &cfg())
    }

    #[test]
    fn ordered_nesting_is_clean() {
        let a = run(
            "crates/core/src/engine/shard.rs",
            "impl E {\n\
               fn sync(&self) { let log = self.crack_log.lock(); }\n\
               fn query(&self) {\n\
                 let s = self.state.write();\n\
                 self.sync();\n\
                 let p = self.published.read();\n\
               }\n\
             }\n",
        );
        assert!(a.lock_violations.is_empty(), "{:?}", a.lock_violations);
    }

    #[test]
    fn direct_inversion_flagged_with_path() {
        let a = run(
            "crates/core/src/engine/shard.rs",
            "impl E {\n\
               fn bad(&self) {\n\
                 let log = self.crack_log.lock();\n\
                 let s = self.state.write();\n\
               }\n\
             }\n",
        );
        assert_eq!(a.lock_violations.len(), 1, "{:?}", a.lock_violations);
        let v = &a.lock_violations[0];
        assert_eq!(v.from, "vkg.cracklog");
        assert_eq!(v.to, "vkg.shard");
        assert_eq!(v.line, 4);
        assert!(v.path[0].contains("E::bad"), "{:?}", v.path);
    }

    #[test]
    fn inversion_through_call_chain_carries_full_path() {
        let a = run(
            "crates/core/src/engine/shard.rs",
            "impl E {\n\
               fn locks_shard(&self) { let s = self.state.write(); }\n\
               fn middle(&self) { self.locks_shard(); }\n\
               fn bad(&self) {\n\
                 let log = self.crack_log.lock();\n\
                 self.middle();\n\
               }\n\
             }\n",
        );
        assert_eq!(a.lock_violations.len(), 1, "{:?}", a.lock_violations);
        let v = &a.lock_violations[0];
        let path = v.path.join(" -> ");
        assert!(path.contains("E::bad"), "{path}");
        assert!(path.contains("E::middle"), "{path}");
        assert!(path.contains("E::locks_shard"), "{path}");
    }

    #[test]
    fn guard_returning_callee_leaves_class_held() {
        let a = run(
            "crates/core/src/engine/shard.rs",
            "impl E {\n\
               fn write_shard(&self, i: usize) -> RwLockWriteGuard<'_, S> {\n\
                 self.shards[i].state.write()\n\
               }\n\
               fn ok(&self) {\n\
                 let s = self.write_shard(0);\n\
                 let log = self.crack_log.lock();\n\
               }\n\
               fn bad(&self) {\n\
                 let log = self.crack_log.lock();\n\
                 let s = self.write_shard(0);\n\
               }\n\
             }\n",
        );
        assert_eq!(a.lock_violations.len(), 1, "{:?}", a.lock_violations);
        assert!(a.lock_violations[0].path.join(" ").contains("write_shard"));
    }

    #[test]
    fn temporaries_die_at_statement_end_and_drop_releases() {
        let a = run(
            "crates/core/src/engine/shard.rs",
            "impl E {\n\
               fn temp(&self) {\n\
                 self.crack_log.lock();\n\
                 let s = self.state.write();\n\
               }\n\
               fn dropped(&self) {\n\
                 let log = self.crack_log.lock();\n\
                 drop(log);\n\
                 let s = self.state.write();\n\
               }\n\
             }\n",
        );
        assert!(a.lock_violations.is_empty(), "{:?}", a.lock_violations);
    }

    #[test]
    fn block_scope_releases_guards() {
        let a = run(
            "crates/core/src/engine/shard.rs",
            "impl E {\n\
               fn scoped(&self) {\n\
                 { let log = self.crack_log.lock(); }\n\
                 let s = self.state.write();\n\
               }\n\
             }\n",
        );
        assert!(a.lock_violations.is_empty(), "{:?}", a.lock_violations);
    }

    #[test]
    fn panic_reachability_follows_calls_and_stops_at_scope() {
        let files = vec![
            parse(
                "crates/server/src/server.rs",
                &scrub(
                    "fn worker_loop() { execute(); }\n\
                     fn execute() { helper(); outside(); }\n\
                     fn helper() { let x = xs[0]; }\n\
                     fn unrelated() { ys[1]; }\n",
                )
                .code,
            ),
            parse(
                "crates/core/src/index/topk.rs",
                &scrub("pub fn outside() { zs[2]; }\n").code,
            ),
        ];
        let a = analyze(&files, &cfg());
        assert_eq!(a.panics.len(), 1, "{:?}", a.panics);
        assert_eq!(a.panics[0].kind, PanicKind::Index);
        assert_eq!(
            a.panics[0].chain,
            vec!["worker_loop", "execute", "helper"],
            "chain reconstructs the static route"
        );
    }
}
