//! Length-prefixed binary framing and primitive encode/decode.
//!
//! A frame on the wire is a little-endian `u32` payload length followed
//! by that many payload bytes. Every payload begins with a protocol
//! version byte ([`WIRE_VERSION`]) and an opcode byte; the message
//! bodies themselves are defined in [`crate::protocol`].
//!
//! Decoding **fails closed**: a frame longer than the negotiated maximum,
//! an unknown opcode, a foreign version byte, an ill-formed body, or
//! trailing garbage all produce a typed [`WireError`] — never a panic —
//! so a server can reply with a typed error and drop the connection.

use std::fmt;
use std::io::{self, Read, Write};

/// Protocol version carried in the first payload byte of every frame.
/// v2 added the idempotency token to `AddFactDynamic` / `FactAdded`.
pub const WIRE_VERSION: u8 = 2;

/// Oldest protocol version this build still decodes. v1 frames are
/// accepted with token fields defaulted to 0 (untokened).
pub const MIN_WIRE_VERSION: u8 = 1;

/// Default upper bound on a frame's payload length (1 MiB). Anything
/// larger is rejected before allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// Smallest well-formed payload: version byte + opcode byte.
pub const MIN_PAYLOAD: usize = 2;

/// Typed decode/transport failure. Every malformed input maps to one of
/// these variants; decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the message did (truncated length prefix,
    /// truncated body, or a field whose declared length exceeds the
    /// remaining bytes).
    Truncated,
    /// The length prefix declares a payload larger than the maximum.
    FrameTooLarge {
        /// Declared payload length.
        declared: u32,
        /// Maximum accepted payload length.
        max: usize,
    },
    /// The payload is shorter than version + opcode.
    FrameTooShort(usize),
    /// The version byte is outside
    /// [`MIN_WIRE_VERSION`]..=[`WIRE_VERSION`].
    BadVersion(u8),
    /// The opcode byte names no known message.
    UnknownOpcode(u8),
    /// A field failed validation (named for diagnostics).
    Malformed(&'static str),
    /// Bytes remained after the message body was fully decoded.
    Trailing(usize),
    /// An underlying socket read/write failed (rendered message).
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated before message end"),
            WireError::FrameTooLarge { declared, max } => {
                write!(f, "declared frame length {declared} exceeds maximum {max}")
            }
            WireError::FrameTooShort(n) => {
                write!(f, "payload of {n} bytes is shorter than version + opcode")
            }
            WireError::BadVersion(v) => {
                write!(
                    f,
                    "protocol version {v} (this build speaks {MIN_WIRE_VERSION}..={WIRE_VERSION})"
                )
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after message end"),
            WireError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::FrameTooLarge {
        declared: u32::MAX,
        max: MAX_FRAME,
    })?;
    if payload.len() > MAX_FRAME {
        return Err(WireError::FrameTooLarge {
            declared: len,
            max: MAX_FRAME,
        });
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from a blocking stream. Returns `Ok(None)` on a clean
/// EOF at a frame boundary; an EOF mid-frame is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(WireError::Truncated)
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let declared = u32::from_le_bytes(len_buf);
    if declared as usize > max {
        return Err(WireError::FrameTooLarge { declared, max });
    }
    if (declared as usize) < MIN_PAYLOAD {
        return Err(WireError::FrameTooShort(declared as usize));
    }
    let mut payload = vec![0u8; declared as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::from(e)
        }
    })?;
    Ok(Some(payload))
}

/// Incremental frame extraction over bytes that arrive in arbitrary
/// chunks (the server's per-connection reader feeds a non-blocking
/// socket into this).
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly-read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as a frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Extracts the next complete frame payload, if one is buffered.
    /// A hostile length prefix fails here, before any allocation.
    pub fn next_frame(&mut self, max: usize) -> Result<Option<Vec<u8>>, WireError> {
        let Some(&[b0, b1, b2, b3]) = self.buf.get(..4) else {
            return Ok(None); // length prefix not complete yet
        };
        let declared = u32::from_le_bytes([b0, b1, b2, b3]);
        if declared as usize > max {
            return Err(WireError::FrameTooLarge { declared, max });
        }
        if (declared as usize) < MIN_PAYLOAD {
            return Err(WireError::FrameTooShort(declared as usize));
        }
        let total = 4 + declared as usize;
        let Some(payload) = self.buf.get(4..total) else {
            return Ok(None); // payload not complete yet
        };
        let payload = payload.to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }
}

/// Primitive little-endian encoder backing the message bodies.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes encoding, yielding the payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        // lint: allow(no-truncating-cast, encode side; strings are bounded by MAX_FRAME = 1 MiB < 2^32)
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Primitive decoder over a payload slice. Every accessor checks bounds
/// and returns [`WireError::Truncated`] rather than panicking.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decodes from `buf`, starting at its first byte.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`WireError::Trailing`] unless every byte was consumed.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::Trailing(n)),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        match *self.take(1)? {
            [b] => Ok(b),
            _ => Err(WireError::Truncated),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b: [u8; 4] = self.take(4)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b: [u8; 8] = self.take(8)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads an IEEE-754 `f64`.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string. The declared length is
    /// checked against the remaining bytes before any allocation.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if self.remaining() < len {
            return Err(WireError::Truncated);
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("non-UTF-8 string"))
    }

    /// Reads a collection length and verifies the remaining bytes can
    /// hold at least `len * min_elem_size` — a hostile length cannot
    /// trigger a huge allocation.
    pub fn seq_len(&mut self, min_elem_size: usize) -> Result<usize, WireError> {
        let len = self.u32()? as usize;
        if len.saturating_mul(min_elem_size) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.f64(-0.125);
        e.str("héllo");
        let payload = e.finish();
        let mut d = Dec::new(&payload);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.f64().unwrap(), -0.125);
        assert_eq!(d.str().unwrap(), "héllo");
        d.finish().unwrap();
    }

    #[test]
    fn decoder_fails_closed_on_truncation() {
        let mut e = Enc::new();
        e.str("abcdef");
        let payload = e.finish();
        for cut in 0..payload.len() {
            let mut d = Dec::new(&payload[..cut]);
            assert_eq!(d.str().unwrap_err(), WireError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Enc::new();
        e.u32(1);
        let mut payload = e.finish();
        payload.push(0xFF);
        let mut d = Dec::new(&payload);
        d.u32().unwrap();
        assert_eq!(d.finish().unwrap_err(), WireError::Trailing(1));
    }

    #[test]
    fn frame_buffer_reassembles_split_frames() {
        let mut out = Vec::new();
        write_frame(&mut out, &[1, 2, 3, 4, 5]).unwrap();
        write_frame(&mut out, &[9, 9]).unwrap();
        let mut fb = FrameBuffer::new();
        // Feed a byte at a time: frames appear exactly when complete.
        let mut frames = Vec::new();
        for &b in &out {
            fb.feed(&[b]);
            while let Some(f) = fb.next_frame(MAX_FRAME).unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames, vec![vec![1, 2, 3, 4, 5], vec![9, 9]]);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn frame_buffer_rejects_oversized_declared_length_early() {
        let mut fb = FrameBuffer::new();
        fb.feed(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            fb.next_frame(MAX_FRAME),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn frame_buffer_rejects_undersized_frames() {
        let mut fb = FrameBuffer::new();
        fb.feed(&1u32.to_le_bytes());
        fb.feed(&[0x01]);
        assert_eq!(
            fb.next_frame(MAX_FRAME).unwrap_err(),
            WireError::FrameTooShort(1)
        );
    }

    #[test]
    fn read_frame_distinguishes_clean_eof_from_truncation() {
        // Clean EOF at the boundary.
        let empty: &[u8] = &[];
        assert_eq!(read_frame(&mut &*empty, MAX_FRAME).unwrap(), None);
        // Truncated length prefix.
        let partial: &[u8] = &[3, 0];
        assert_eq!(
            read_frame(&mut &*partial, MAX_FRAME).unwrap_err(),
            WireError::Truncated
        );
        // Truncated body.
        let mut framed = Vec::new();
        write_frame(&mut framed, &[1, 2, 3]).unwrap();
        framed.pop();
        assert_eq!(
            read_frame(&mut &framed[..], MAX_FRAME).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn seq_len_guards_against_hostile_lengths() {
        let mut e = Enc::new();
        e.u32(u32::MAX); // claims 4 billion elements
        let payload = e.finish();
        let mut d = Dec::new(&payload);
        assert_eq!(d.seq_len(8).unwrap_err(), WireError::Truncated);
    }
}
