//! Query processing over the virtual knowledge graph (paper §V).

pub mod aggregate;
pub mod guarantees;
pub mod probability;
pub mod topk;
