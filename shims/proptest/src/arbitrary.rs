//! `any::<T>()` support for primitive types.

use std::marker::PhantomData;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The full-range strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
