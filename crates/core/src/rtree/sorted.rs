//! The multi-sort-order partition representation.
//!
//! BULKLOADCHUNK keeps the data in `S` *sort orders* — here one per S₂
//! axis (points are degenerate rectangles, so the 2α rectangle coordinates
//! collapse to α). A binary split picks a prefix of one order; all other
//! orders are then stable-partitioned by membership so every order stays
//! sorted (the paper's SPLITONKEY, lines 6–7 of BESTBINARYSPLIT).

use std::collections::HashSet;

use crate::geometry::{Mbr, PointSet};

/// A partition of point ids maintained in one sorted list per axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortOrders {
    orders: Vec<Vec<u32>>,
}

impl SortOrders {
    /// Builds the `S = α` sort orders of `ids` over `points`.
    ///
    /// Ties broken by id, so construction is deterministic.
    pub fn build(points: &PointSet, mut ids: Vec<u32>) -> Self {
        let dim = points.dim();
        let mut orders = Vec::with_capacity(dim);
        for axis in 0..dim {
            let mut order = if axis + 1 == dim {
                std::mem::take(&mut ids)
            } else {
                ids.clone()
            };
            order.sort_unstable_by(|&a, &b| {
                points
                    .coord(a, axis)
                    .partial_cmp(&points.coord(b, axis))
                    .expect("NaN coordinate in point set")
                    .then(a.cmp(&b))
            });
            orders.push(order);
        }
        Self { orders }
    }

    /// Number of points in the partition.
    #[inline]
    pub fn len(&self) -> usize {
        self.orders.first().map_or(0, Vec::len)
    }

    /// Whether the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sort orders `S`.
    pub fn num_orders(&self) -> usize {
        self.orders.len()
    }

    /// The ids in sort order `axis`.
    #[inline]
    pub fn ids(&self, axis: usize) -> &[u32] {
        &self.orders[axis]
    }

    /// Consumes the partition, returning the ids (first order).
    pub fn into_ids(mut self) -> Vec<u32> {
        self.orders.swap_remove(0)
    }

    /// The MBR of the partition: per-axis extremes read in O(α) from the
    /// sorted ends.
    pub fn mbr(&self, points: &PointSet) -> Mbr {
        let mut mbr = Mbr::empty(self.num_orders());
        if self.is_empty() {
            return mbr;
        }
        // The first/last entries of each order give that axis's extremes;
        // include both endpoint *points* so every axis of the MBR is set.
        for order in &self.orders {
            mbr.include_point(points.point(order[0]));
            mbr.include_point(points.point(*order.last().expect("non-empty order")));
        }
        mbr
    }

    /// Number of points inside `region`.
    pub fn count_in_region(&self, points: &PointSet, region: &Mbr) -> usize {
        self.orders[0]
            .iter()
            .filter(|&&id| points.in_region(id, region))
            .count()
    }

    /// Splits off the first `count` ids of order `axis` (the paper's
    /// SPLITONKEY): returns `(low, high)` partitions with **all** orders
    /// maintained sorted via stable partition by membership.
    ///
    /// # Panics
    /// Panics if `count` is 0 or ≥ `len` (a split must be proper).
    pub fn split_by_prefix(&self, axis: usize, count: usize) -> (SortOrders, SortOrders) {
        let len = self.len();
        assert!(count > 0 && count < len, "improper split {count}/{len}");
        let low_set: HashSet<u32> = self.orders[axis][..count].iter().copied().collect();

        let mut low = Vec::with_capacity(self.num_orders());
        let mut high = Vec::with_capacity(self.num_orders());
        for order in &self.orders {
            let mut l = Vec::with_capacity(count);
            let mut h = Vec::with_capacity(len - count);
            for &id in order {
                if low_set.contains(&id) {
                    l.push(id);
                } else {
                    h.push(id);
                }
            }
            low.push(l);
            high.push(h);
        }
        (SortOrders { orders: low }, SortOrders { orders: high })
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.orders
            .iter()
            .map(|o| o.capacity() * std::mem::size_of::<u32>())
            .sum()
    }

    /// Inserts a point id into every order at its sorted position
    /// (dynamic updates, paper §VIII). O(S·n) worst case per insert.
    pub fn insert(&mut self, points: &PointSet, id: u32) {
        for (axis, order) in self.orders.iter_mut().enumerate() {
            let key = points.coord(id, axis);
            let pos = order.partition_point(|&other| {
                let oc = points.coord(other, axis);
                oc < key || (oc == key && other < id)
            });
            order.insert(pos, id);
        }
    }

    /// Removes a point id from every order; returns whether it was
    /// present.
    pub fn remove(&mut self, id: u32) -> bool {
        let mut found = false;
        for order in &mut self.orders {
            if let Some(pos) = order.iter().position(|&x| x == id) {
                order.remove(pos);
                found = true;
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 6 points in 2-D laid out so axis orders differ.
    fn fixture() -> (PointSet, SortOrders) {
        let ps = PointSet::from_rows(
            2,
            vec![
                0.0, 5.0, // id 0
                1.0, 4.0, // id 1
                2.0, 3.0, // id 2
                3.0, 2.0, // id 3
                4.0, 1.0, // id 4
                5.0, 0.0, // id 5
            ],
        );
        let ids = ps.all_ids();
        let so = SortOrders::build(&ps, ids);
        (ps, so)
    }

    #[test]
    fn orders_are_sorted_per_axis() {
        let (ps, so) = fixture();
        assert_eq!(so.num_orders(), 2);
        assert_eq!(so.ids(0), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(so.ids(1), &[5, 4, 3, 2, 1, 0]);
        assert_eq!(so.len(), 6);
        let _ = ps;
    }

    #[test]
    fn tie_break_by_id() {
        let ps = PointSet::from_rows(1, vec![7.0, 7.0, 3.0]);
        let so = SortOrders::build(&ps, vec![0, 1, 2]);
        assert_eq!(so.ids(0), &[2, 0, 1]);
    }

    #[test]
    fn mbr_covers_all_points() {
        let (ps, so) = fixture();
        let mbr = so.mbr(&ps);
        assert_eq!(mbr.min(0), 0.0);
        assert_eq!(mbr.max(0), 5.0);
        assert_eq!(mbr.min(1), 0.0);
        assert_eq!(mbr.max(1), 5.0);
    }

    #[test]
    fn split_preserves_sortedness_and_partitioning() {
        let (_ps, so) = fixture();
        let (low, high) = so.split_by_prefix(0, 2);
        assert_eq!(low.ids(0), &[0, 1]);
        assert_eq!(high.ids(0), &[2, 3, 4, 5]);
        // Axis-1 orders stay sorted (descending-x points ascend in y).
        assert_eq!(low.ids(1), &[1, 0]);
        assert_eq!(high.ids(1), &[5, 4, 3, 2]);
        assert_eq!(low.len() + high.len(), 6);
    }

    #[test]
    fn split_on_second_axis() {
        let (_ps, so) = fixture();
        let (low, high) = so.split_by_prefix(1, 3);
        // Lowest three y values are points 5, 4, 3.
        assert_eq!(low.ids(1), &[5, 4, 3]);
        assert_eq!(low.ids(0), &[3, 4, 5]);
        assert_eq!(high.ids(0), &[0, 1, 2]);
    }

    #[test]
    fn count_in_region() {
        let (ps, so) = fixture();
        let region = Mbr::of_ball(&[2.5, 2.5], 1.0);
        // Points (2,3) and (3,2) fall inside.
        assert_eq!(so.count_in_region(&ps, &region), 2);
        let everywhere = Mbr::of_ball(&[2.5, 2.5], 10.0);
        assert_eq!(so.count_in_region(&ps, &everywhere), 6);
    }

    #[test]
    fn into_ids_returns_one_copy() {
        let (_ps, so) = fixture();
        let ids = so.into_ids();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    #[should_panic(expected = "improper split")]
    fn degenerate_split_rejected() {
        let (_ps, so) = fixture();
        let _ = so.split_by_prefix(0, 6);
    }

    #[test]
    fn empty_partition() {
        let ps = PointSet::from_rows(2, vec![]);
        let so = SortOrders::build(&ps, vec![]);
        assert!(so.is_empty());
        assert!(so.mbr(&ps).is_empty());
    }
}
