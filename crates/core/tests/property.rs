//! Property-based tests for the index core: MBR algebra, sort-order
//! splits, the cracking invariants (Lemma 1), search exactness against
//! brute force, and the aggregate estimators.

use proptest::prelude::*;

use vkg_core::config::SplitStrategy;
use vkg_core::geometry::{kernels, Mbr, PointSet};
use vkg_core::index::CrackingIndex;
use vkg_core::query::aggregate;
use vkg_core::rtree::SortOrders;
use vkg_sync::pool::Pool;

fn arb_points(max_n: usize, dim: usize) -> impl Strategy<Value = PointSet> {
    prop::collection::vec(-50.0f64..50.0, dim..=max_n * dim).prop_map(move |mut coords| {
        coords.truncate(coords.len() / dim * dim);
        PointSet::from_rows(dim, coords)
    })
}

fn brute_force(ps: &PointSet, q: &Mbr) -> Vec<u32> {
    (0..ps.len() as u32)
        .filter(|&i| ps.in_region(i, q))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MBR union covers both inputs; intersection volume is bounded by
    /// both volumes; containment is transitive through union.
    #[test]
    fn mbr_algebra(
        pts_a in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..10),
        pts_b in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..10),
    ) {
        let mut a = Mbr::empty(2);
        for (x, y) in &pts_a {
            a.include_point(&[*x, *y]);
        }
        let mut b = Mbr::empty(2);
        for (x, y) in &pts_b {
            b.include_point(&[*x, *y]);
        }
        let mut u = a;
        u.include_mbr(&b);
        prop_assert!(u.contains_mbr(&a));
        prop_assert!(u.contains_mbr(&b));
        for (x, y) in pts_a.iter().chain(&pts_b) {
            prop_assert!(u.contains_point(&[*x, *y]));
        }
        let ov = a.overlap_volume(&b);
        prop_assert!(ov <= a.volume() + 1e-9);
        prop_assert!(ov <= b.volume() + 1e-9);
        prop_assert!(ov >= 0.0);
        // Intersection symmetric.
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        prop_assert!((ov - b.overlap_volume(&a)).abs() < 1e-9);
    }

    /// min_distance_sq is 0 exactly for contained points and positive
    /// otherwise, and never exceeds the distance to any covered point.
    #[test]
    fn mbr_min_distance(
        pts in prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 1..10),
        q in (-30.0f64..30.0, -30.0f64..30.0),
    ) {
        let mut m = Mbr::empty(2);
        for (x, y) in &pts {
            m.include_point(&[*x, *y]);
        }
        let query = [q.0, q.1];
        let d = m.min_distance_sq(&query);
        if m.contains_point(&query) {
            prop_assert_eq!(d, 0.0);
        }
        for (x, y) in &pts {
            let dist = (x - q.0).powi(2) + (y - q.1).powi(2);
            prop_assert!(d <= dist + 1e-9);
        }
    }

    /// A sort-order split partitions the ids and keeps every order sorted.
    #[test]
    fn sort_order_split_partitions(ps in arb_points(40, 3), cut in 1usize..20, axis in 0usize..3) {
        if ps.len() < 2 {
            return Ok(());
        }
        let so = SortOrders::build(&ps, ps.all_ids());
        let cut = cut.min(ps.len() - 1).max(1);
        let (lo, hi) = so.split_by_prefix(axis, cut);
        prop_assert_eq!(lo.len(), cut);
        prop_assert_eq!(lo.len() + hi.len(), ps.len());
        // Partition: every id on exactly one side.
        let mut seen = vec![false; ps.len()];
        for &id in lo.ids(0).iter().chain(hi.ids(0)) {
            prop_assert!(!seen[id as usize]);
            seen[id as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Sortedness maintained in every order on both sides.
        for side in [&lo, &hi] {
            for ax in 0..3 {
                let ids = side.ids(ax);
                for w in ids.windows(2) {
                    prop_assert!(ps.coord(w[0], ax) <= ps.coord(w[1], ax));
                }
            }
        }
        // The low side really is the coordinate prefix on the split axis.
        let max_lo = lo.ids(axis).iter().map(|&i| ps.coord(i, axis)).fold(f64::MIN, f64::max);
        let min_hi = hi.ids(axis).iter().map(|&i| ps.coord(i, axis)).fold(f64::MAX, f64::min);
        prop_assert!(max_lo <= min_hi);
    }

    /// THE core invariant: after arbitrary crack sequences, region search
    /// over the index equals brute force, and Lemma 1 holds.
    #[test]
    fn crack_search_exact(
        ps in arb_points(120, 3),
        queries in prop::collection::vec(
            ((-60.0f64..60.0, -60.0f64..60.0, -60.0f64..60.0), 0.5f64..30.0),
            1..6
        ),
        greedy in any::<bool>(),
    ) {
        let strategy = if greedy {
            SplitStrategy::Greedy
        } else {
            SplitStrategy::TopK { choices: 2 }
        };
        let mut idx = CrackingIndex::new(ps.clone(), 4, 3, 2.0, strategy);
        for ((x, y, z), r) in queries {
            let q = Mbr::of_ball(&[x, y, z], r);
            idx.crack(&q);
            idx.check_invariants();
            let mut got = Vec::new();
            idx.search_region(&q, |id| got.push(id));
            got.sort_unstable();
            prop_assert_eq!(got, brute_force(&ps, &q));
        }
    }

    /// Bulk load is always lossless and fully split regardless of data.
    #[test]
    fn bulk_load_lossless(ps in arb_points(150, 2)) {
        let idx = CrackingIndex::bulk_load(ps.clone(), 4, 3, 1.5);
        idx.check_invariants();
        let all = ps.mbr_of(&ps.all_ids());
        let mut got = Vec::new();
        let mut idx = idx;
        idx.search_region(&all, |id| got.push(id));
        got.sort_unstable();
        prop_assert_eq!(got.len(), ps.len());
    }

    /// Aggregate estimators: full access reproduces the plain
    /// probability-weighted expectations; MIN/MAX are order-consistent.
    #[test]
    fn aggregate_estimators_consistent(
        pairs in prop::collection::vec((0.1f64..100.0, 0.01f64..1.0), 1..20),
    ) {
        let values: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let mut probs: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        probs.sort_by(|a, b| b.total_cmp(a));
        let sum = aggregate::estimate_sum(&values, &probs);
        let expect: f64 = values.iter().zip(&probs).map(|(v, p)| v * p).sum();
        prop_assert!((sum - expect).abs() < 1e-6 * expect.abs().max(1.0));

        let avg = aggregate::estimate_avg(&values, &probs);
        let (lo, hi) = values.iter().fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9, "avg {avg} outside [{lo}, {hi}]");

        let count = aggregate::estimate_count(&probs);
        prop_assert!(count > 0.0 && count <= probs.len() as f64 + 1e-9);

        let max = aggregate::estimate_max(&values, &probs);
        let min = aggregate::estimate_min(&values, &probs);
        prop_assert!(max >= min - 1e-9, "max {max} < min {min}");
        prop_assert!(max.is_finite() && min.is_finite());
        // With a certain closest point (p₁ = 1, the engine's invariant),
        // the MAX estimate is at least the smallest observed value.
        let mut certain = probs.clone();
        certain[0] = 1.0;
        let max_certain = aggregate::estimate_max(&values, &certain);
        prop_assert!(max_certain >= lo - 1e-9, "certain max {max_certain} < lo {lo}");
    }

    /// The blocked `|p|² − 2p·q + |q|²` kernel agrees with the scalar
    /// reference within 1e-9 relative error at every dimension up to
    /// MAX_DIM and over strided (non-contiguous) id lists.
    #[test]
    fn blocked_kernel_matches_scalar(
        dim in 1usize..=16,
        stride in 1usize..=4,
        seed in any::<u64>(),
    ) {
        let n = 257usize;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2_000) as f64 / 10.0 - 100.0
        };
        let coords: Vec<f64> = (0..n * dim).map(|_| next()).collect();
        let ps = PointSet::from_rows(dim, coords);
        let q: Vec<f64> = (0..dim).map(|_| next()).collect();
        let ids: Vec<u32> = (0..n as u32).step_by(stride).collect();
        let mut scalar = vec![0.0; ids.len()];
        let mut blocked = vec![0.0; ids.len()];
        kernels::scalar_distances_sq(&ps, &ids, &q, &mut scalar);
        kernels::blocked_distances_sq(&ps, &ids, &q, &mut blocked);
        for (s, b) in scalar.iter().zip(&blocked) {
            let tol = 1e-9 * s.abs().max(1.0);
            prop_assert!((s - b).abs() <= tol, "dim {dim} stride {stride}: {s} vs {b}");
        }
        // The pooled dispatcher covers the same ids at any width.
        for width in [1usize, 4] {
            let mut pooled = vec![0.0; ids.len()];
            kernels::distances_sq(&Pool::new(width), &ps, &ids, &q, &mut pooled);
            for (s, p) in scalar.iter().zip(&pooled) {
                prop_assert!((s - p).abs() <= 1e-9 * s.abs().max(1.0));
            }
        }
    }

    /// Theorem 4 tail bound is a valid, monotone tail function for any
    /// inputs.
    #[test]
    fn deviation_bound_valid(
        mu in 0.1f64..1000.0,
        values in prop::collection::vec(0.0f64..50.0, 0..20),
        unaccessed in 0usize..50,
        vm in 0.0f64..50.0,
    ) {
        let b = aggregate::deviation_bound(mu, &values, &vec![1.0; unaccessed], vm);
        let mut prev = f64::INFINITY;
        for delta in [0.01, 0.1, 0.5, 1.0, 2.0] {
            let p = b.tail_probability(delta);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p <= prev + 1e-12);
            prev = p;
        }
        // delta_for_confidence inverts the tail bound — except in the
        // degenerate exact case (zero increment mass), where δ = 0 and
        // Pr[|S − μ| ≥ 0] is trivially 1.
        if b.increment_mass > 0.0 {
            for conf in [0.5, 0.9] {
                let delta = b.delta_for_confidence(conf);
                prop_assert!(b.tail_probability(delta) <= 1.0 - conf + 1e-6);
            }
        }
    }
}

proptest! {
    // Each case bulk-loads a ~5k-point set three times, so keep the
    // case count low; the sizes stay above the pooled-path threshold
    // (4096) so the parallel code genuinely runs.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A bulk build over a width-N pool produces a tree *identical* to
    /// the width-1 (exact serial) build: same node count, same bytes,
    /// and the same DFS leaf-id visit sequence — the split choices are
    /// deterministic, only the cost bookkeeping may differ in float
    /// accumulation order.
    #[test]
    fn pooled_bulk_build_matches_serial(seed in any::<u64>(), extra in 0usize..600) {
        let n = 4_300 + extra;
        let dim = 3usize;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 10_000) as f64 / 100.0 - 50.0
        };
        let coords: Vec<f64> = (0..n * dim).map(|_| next()).collect();
        let ps = PointSet::from_rows(dim, coords);
        let visit_order = |idx: &mut CrackingIndex| {
            let all = idx.points().mbr_of(&idx.points().all_ids());
            let mut order = Vec::with_capacity(n);
            idx.search_region(&all, |id| order.push(id));
            order
        };
        let mut serial = CrackingIndex::bulk_load_with_pool(ps.clone(), 16, 8, 2.0, Pool::serial());
        serial.check_invariants();
        let serial_order = visit_order(&mut serial);
        for width in [2usize, 4] {
            let mut pooled =
                CrackingIndex::bulk_load_with_pool(ps.clone(), 16, 8, 2.0, Pool::new(width));
            pooled.check_invariants();
            prop_assert_eq!(pooled.node_count(), serial.node_count(), "width {}", width);
            prop_assert_eq!(pooled.index_bytes(), serial.index_bytes(), "width {}", width);
            let pooled_order = visit_order(&mut pooled);
            prop_assert_eq!(&pooled_order, &serial_order, "width {}", width);
        }
    }
}
