//! The serving loop: accept thread, per-connection I/O threads, a
//! bounded admission queue, and a fixed worker pool executing queries
//! against epoch-pinned snapshots.
//!
//! # Admission control
//!
//! Every query or write admitted to the internal job queue is guaranteed an
//! answer — success, a typed query error, or `DeadlineExceeded` — so
//! the counter invariant `admitted == answered` holds whenever the
//! queue is empty (and in particular after a graceful drain). When the
//! queue is full the connection thread *sheds* the request immediately
//! with [`ErrorCode::Overloaded`] instead of queueing unboundedly;
//! clients are expected to back off and retry.
//!
//! Admission also **sanitizes parameters**: decoding being fail-closed
//! is not enough, because a *well-formed* frame can still carry
//! resource-exhaustion values. Before a request is queued, `k` is
//! clamped to the entity count and to the largest answer that fits in a
//! response frame, the dynamic write's gradient-step budget is capped at
//! [`MAX_REFINE_STEPS`] (the refinement loop runs under the engine write
//! lock), and a non-finite or out-of-range learning rate is refused with
//! a typed [`ErrorCode::Query`] error before it can poison the shared
//! embeddings.
//!
//! # Epoch-swapped reads, sharded
//!
//! Workers execute reads through
//! [`VirtualKnowledgeGraph::with_published_shard`], which takes only
//! the owning relation's shard lock and pins one `(epoch, snapshot)`
//! pair for the whole query — traffic on one hot relation never stalls
//! queries routed to other shards. Dynamic writes go through the
//! facade's `&self` single-writer path (all shard locks) and publish a
//! fresh snapshot with a bumped epoch; every response carries the epoch
//! it was computed at so clients can reason about read-your-writes.
//! Admission is recorded per shard ([`crate::queue::ShardCounters`])
//! and reported in `Stats`; a graceful drain ends by **quiescing** every
//! shard (acquiring and releasing all shard locks) so no in-flight
//! cracking outlives the server.
//!
//! # Same-shard batching
//!
//! With [`ServerConfig::batch_max`] > 1 a worker drains up to that many
//! queued jobs per wake-up ([`crate::queue::JobQueue::pop_batch`]),
//! buckets the relation-routed reads by engine shard, and executes each
//! bucket under **one** shard-lock acquisition — amortizing lock and
//! crack-log-replay cost across the group (`server.lock_rounds` /
//! `server.answered` drops below 1). Reads go through the facade's
//! cache-aware pinned entry points, so the epoch-keyed result cache
//! serves repeats without recomputation. Each batched job's deadline is
//! re-checked **after** the lock is held; expired jobs are refused, not
//! executed, and still answered — `admitted == answered` survives
//! batching. The default `batch_max = 1` reproduces unbatched serving
//! exactly.
//!
//! # Observability
//!
//! Every admitted request is traced into a [`vkg_obs::Span`] — queue
//! wait → shard lock (including crack-log replay) → execute → encode —
//! and pushed into a fixed-size lock-free [`SpanRing`]; the admission
//! counters and a server-side latency histogram live in a `server.*`
//! [`Registry`] (see [`names`]). The wire `Metrics` opcode (and
//! [`ServerHandle::metrics`]) exports the server registry merged with
//! the facade's `core.*` registry plus the newest spans. Like `Stats`
//! it is answered inline, bypassing admission control, so telemetry
//! stays reachable precisely when the server is overloaded. All timing
//! runs on the [`Clock`] in [`ServerConfig::clock`], which tests mock.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use vkg_core::engine::IndexState;
use vkg_core::vkg::{ShardPin, VirtualKnowledgeGraph};
use vkg_core::VkgSnapshot;
use vkg_kg::{EntityId, RelationId};
use vkg_obs::{Clock, Counter, Gauge, HistogramCell, Registry, Span, SpanOutcome, SpanRing, Tick};
use vkg_sync::thread::{self, JoinHandle};
use vkg_sync::{AtomicBool, AtomicU64, Ordering};

use crate::protocol::{
    AggregateWire, ErrorCode, MetricsWire, Request, RequestOp, Response, ServerCounters,
    ServerError, ShardStatsWire, StatsWire, TopKWire, WireFilter,
};
use crate::queue::{Admission, Counters, JobQueue, ShardCounters};
use crate::wire::{write_frame, FrameBuffer, WireError};

/// Metric names exported by the server (`server.*` namespace). The
/// admission counters are mirrored into gauges at export time — the
/// [`Counters`] atomics stay the single source of truth — so the wire
/// `Metrics` export and the `Stats` report can never disagree.
pub mod names {
    /// End-to-end server-side latency per answered request
    /// (queue wait + lock + execute + encode), microseconds.
    pub const LATENCY_US: &str = "server.latency_us";
    /// Jobs sitting in the admission queue at export time.
    pub const QUEUE_DEPTH: &str = "server.queue_depth";
    /// Mirror of [`ServerCounters::admitted`].
    pub const ADMITTED: &str = "server.admitted";
    /// Mirror of [`ServerCounters::answered`].
    pub const ANSWERED: &str = "server.answered";
    /// Mirror of [`ServerCounters::shed`].
    pub const SHED: &str = "server.shed";
    /// Mirror of [`ServerCounters::deadline_expired`].
    pub const DEADLINE_EXPIRED: &str = "server.deadline_expired";
    /// Mirror of [`ServerCounters::drained`].
    pub const DRAINED: &str = "server.drained";
    /// Jobs drained per worker wake-up — the batch-size distribution.
    /// Recorded as raw counts (a sample of `3` means a 3-job batch).
    pub const BATCH_SIZE: &str = "server.batch_size";
    /// Engine lock rounds taken by workers: one per same-shard batch
    /// group, per standalone query, and per dynamic write. With
    /// batching on, `lock_rounds / answered < 1` is the whole point.
    pub const LOCK_ROUNDS: &str = "server.lock_rounds";
    /// Mirror of the facade's `core.wal.appended` counter: WAL records
    /// flushed before their ack. The `--check` reconciliation compares
    /// this against the client's completed tokened writes.
    pub const WAL_APPENDED: &str = "server.wal.appended";
    /// Mirror of `core.wal.replayed`: records replayed at recovery.
    pub const WAL_REPLAYED: &str = "server.wal.replayed";
    /// Mirror of `core.wal.dedup_hits`: tokened retries answered from
    /// the idempotency map instead of being applied twice.
    pub const WAL_DEDUP_HITS: &str = "server.wal.dedup_hits";
}

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing queries (≥ 1).
    pub workers: usize,
    /// Bounded admission-queue capacity; a full queue sheds with
    /// [`ErrorCode::Overloaded`] (≥ 1).
    pub queue_capacity: usize,
    /// Deadline applied to requests that pass `deadline_ms = 0`.
    pub default_deadline: Duration,
    /// Largest frame accepted from a client.
    pub max_frame: usize,
    /// Artificial per-request execution delay — fault injection used by
    /// the overload and deadline tests to make queueing deterministic.
    pub worker_think_time: Option<Duration>,
    /// Capacity of the lock-free span ring: how many of the most recent
    /// per-request spans the `Metrics` export can return.
    pub span_ring: usize,
    /// Most jobs a worker drains from the queue per wake-up. Jobs
    /// routing to the same engine shard execute under **one** shard-lock
    /// acquisition; each job's deadline is re-checked after the lock is
    /// held. `1` (the default) reproduces unbatched serving exactly.
    pub batch_max: usize,
    /// The clock every span phase, deadline check, and latency sample is
    /// measured on. Tests inject [`Clock::mock`] to make timing
    /// deterministic; the default is the real monotonic clock.
    pub clock: Clock,
    /// Write-ahead log path. `Some(path)` makes [`Server::start`] attach
    /// the WAL to the facade before serving: the log at `path` is
    /// replayed (torn tail truncated), and from then on every dynamic
    /// write is appended + flushed before its `FactAdded` ack. `None`
    /// (the default) serves exactly the in-memory path.
    pub wal: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 128,
            default_deadline: Duration::from_secs(5),
            max_frame: crate::wire::MAX_FRAME,
            worker_think_time: None,
            span_ring: 256,
            batch_max: 1,
            clock: Clock::real(),
            wal: None,
        }
    }
}

/// One admitted unit of work.
struct Job {
    /// Server-assigned query id, stamped into the traced span.
    id: u64,
    request: Request,
    /// The engine shard the request routes to (`None` for control
    /// operations, which never reach the queue anyway).
    shard: Option<usize>,
    admitted_at: Tick,
    deadline: Duration,
    /// The worker sends back the answer plus the span traced for it;
    /// the connection thread stamps `encode_ns` and publishes the span.
    reply: mpsc::Sender<(Response, Span)>,
}

/// Server-side observability: the `server.*` registry, the span ring,
/// and the clock everything is measured on. Always on — the handles are
/// atomic adds and the ring never blocks a worker.
struct Obs {
    registry: Registry,
    clock: Clock,
    ring: SpanRing,
    next_query_id: AtomicU64,
    latency: HistogramCell,
    batch_size: HistogramCell,
    lock_rounds: Counter,
    queue_depth: Gauge,
    admitted: Gauge,
    answered: Gauge,
    shed: Gauge,
    deadline_expired: Gauge,
    drained: Gauge,
    wal_appended: Gauge,
    wal_replayed: Gauge,
    wal_dedup_hits: Gauge,
}

impl Obs {
    fn new(cfg: &ServerConfig) -> Self {
        let registry = Registry::active();
        Obs {
            clock: cfg.clock.clone(),
            ring: SpanRing::new(cfg.span_ring),
            next_query_id: AtomicU64::new(0),
            latency: registry.histogram(names::LATENCY_US),
            batch_size: registry.histogram(names::BATCH_SIZE),
            lock_rounds: registry.counter(names::LOCK_ROUNDS),
            queue_depth: registry.gauge(names::QUEUE_DEPTH),
            admitted: registry.gauge(names::ADMITTED),
            answered: registry.gauge(names::ANSWERED),
            shed: registry.gauge(names::SHED),
            deadline_expired: registry.gauge(names::DEADLINE_EXPIRED),
            drained: registry.gauge(names::DRAINED),
            wal_appended: registry.gauge(names::WAL_APPENDED),
            wal_replayed: registry.gauge(names::WAL_REPLAYED),
            wal_dedup_hits: registry.gauge(names::WAL_DEDUP_HITS),
            registry,
        }
    }
}

struct Shared {
    vkg: Arc<VirtualKnowledgeGraph>,
    cfg: ServerConfig,
    queue: JobQueue<Job>,
    counters: Counters,
    shard_counters: ShardCounters,
    draining: AtomicBool,
    obs: Obs,
}

/// The query server. Construct with [`Server::start`]; the returned
/// [`ServerHandle`] owns the background threads.
pub struct Server;

impl Server {
    /// Binds `addr`, spawns the accept loop and `cfg.workers` workers,
    /// and returns immediately. Pass `"127.0.0.1:0"` to let the OS pick
    /// a port (read it back from [`ServerHandle::addr`]).
    pub fn start<A: ToSocketAddrs>(
        vkg: Arc<VirtualKnowledgeGraph>,
        addr: A,
        cfg: ServerConfig,
    ) -> io::Result<ServerHandle> {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(cfg.queue_capacity >= 1, "need a non-empty queue");
        if let Some(path) = cfg.wal.as_deref() {
            // Replay + arm the WAL before any connection is accepted, so
            // the first acked write is already covered by the log.
            vkg.attach_wal(path, vkg_core::FaultPlane::none())
                .map_err(|e| io::Error::other(e.to_string()))?;
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shard_counters = ShardCounters::new(vkg.shard_count());
        let obs = Obs::new(&cfg);
        let shared = Arc::new(Shared {
            vkg,
            queue: JobQueue::new(cfg.queue_capacity),
            counters: Counters::default(),
            shard_counters,
            draining: AtomicBool::new(false),
            obs,
            cfg,
        });
        let mut workers: Vec<JoinHandle<()>> = Vec::with_capacity(shared.cfg.workers);
        for i in 0..shared.cfg.workers {
            let worker_shared = Arc::clone(&shared);
            match thread::Builder::new()
                .name(format!("vkg-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared))
            {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Unblock the workers spawned so far (they are parked
                    // on `pop`) before reporting the OS's refusal.
                    shared.queue.close();
                    return Err(e);
                }
            }
        }
        let accept = {
            let accept_shared = Arc::clone(&shared);
            match thread::Builder::new()
                .name("vkg-accept".into())
                .spawn(move || accept_loop(listener, &accept_shared, workers))
            {
                Ok(handle) => handle,
                Err(e) => {
                    // The worker handles were owned by the failed spawn's
                    // closure and are gone; closing the queue lets those
                    // detached workers drain and exit.
                    shared.queue.close();
                    return Err(e);
                }
            }
        };
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
        })
    }
}

/// Owner of a running server's threads. Dropping the handle without
/// calling [`ServerHandle::shutdown`]/[`ServerHandle::join`] detaches
/// the threads (they exit once a drain is triggered remotely).
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Current admission-control counters.
    pub fn counters(&self) -> ServerCounters {
        self.shared.counters.snapshot()
    }

    /// Per-shard `(admitted, answered)` counters, in shard order.
    pub fn shard_counters(&self) -> Vec<(u64, u64)> {
        self.shared.shard_counters.snapshot()
    }

    /// The merged observability export — identical in content to what
    /// the wire `Metrics` opcode returns — for in-process callers like
    /// the load generator's artifact writer.
    pub fn metrics(&self, last_spans: usize) -> MetricsWire {
        metrics_export(&self.shared, last_spans)
    }

    /// Whether a drain has been triggered (locally or by a client's
    /// `Shutdown` request).
    pub fn is_draining(&self) -> bool {
        // seqcst: drain flag; all threads must agree on one global
        // order of drain vs. admit (see shutdown()).
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Triggers a graceful drain and blocks until every thread exits:
    /// stop accepting, answer all admitted work, join workers.
    pub fn shutdown(mut self) -> ServerCounters {
        // seqcst: drain flag; the drained-counters invariant (admitted ==
        // answered + shed + expired + drained after join) needs every
        // thread to agree on which requests arrived before the drain.
        self.shared.draining.store(true, Ordering::SeqCst);
        self.join_inner();
        self.shared.counters.snapshot()
    }

    /// Blocks until the server drains (e.g. after a client sent
    /// `Shutdown`) and every thread exits.
    pub fn join(mut self) -> ServerCounters {
        self.join_inner();
        self.shared.counters.snapshot()
    }

    fn join_inner(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

const ACCEPT_POLL: Duration = Duration::from_millis(1);
const CONN_READ_TIMEOUT: Duration = Duration::from_millis(20);

/// Most gradient-refinement steps a wire `AddFactDynamic` may request.
/// The refinement loop runs while holding the engine write lock, so an
/// unbounded step count from one client would wedge every query, stat,
/// and drain behind it.
pub const MAX_REFINE_STEPS: u32 = 1024;

/// Wire cost of one `PredictionWire` (`u32` id + two `f64`s).
const PREDICTION_WIRE_BYTES: usize = 20;

/// Fixed bytes of a top-k response around its prediction list (version,
/// opcode, epoch, list length, and the four trailing guarantee/counter
/// fields), rounded up for safety.
const TOPK_FRAME_OVERHEAD: usize = 64;

/// Largest `k` whose top-k response is guaranteed to fit in one
/// [`crate::wire::MAX_FRAME`]-sized frame.
const fn max_k_per_frame() -> u32 {
    ((crate::wire::MAX_FRAME - TOPK_FRAME_OVERHEAD) / PREDICTION_WIRE_BYTES) as u32
}

/// Validates and clamps a decoded request's parameters before it is
/// admitted (see the module docs). Returns the typed refusal to send
/// instead of queueing when a parameter is rejected outright.
// The Err IS the payload here (a full refusal Response, now carrying
// per-shard stats rows); it is built once per rejected request on the
// cold path, so boxing would only add an allocation.
#[allow(clippy::result_large_err)]
fn sanitize(shared: &Shared, request: &mut Request) -> Result<(), Response> {
    match &mut request.op {
        RequestOp::TopK { k, .. } | RequestOp::TopKFiltered { k, .. } => {
            // Clamp rather than refuse: the engine allocates O(k) per
            // query, and no answer can exceed the entity count anyway.
            // `max(1)` keeps `k >= 1` requests out of the engine's
            // `k == 0` rejection on an empty graph.
            let entities = shared.vkg.snapshot().graph().num_entities();
            let cap = u32::try_from(entities)
                .unwrap_or(u32::MAX)
                .max(1)
                .min(max_k_per_frame());
            *k = (*k).min(cap);
        }
        RequestOp::AddFactDynamic {
            refine_steps,
            learning_rate,
            ..
        } => {
            if *refine_steps > MAX_REFINE_STEPS {
                return Err(refusal(
                    ErrorCode::Query,
                    &format!("refine_steps {refine_steps} exceeds the cap of {MAX_REFINE_STEPS}"),
                ));
            }
            if !learning_rate.is_finite() || !(0.0..=1.0).contains(learning_rate) {
                return Err(refusal(
                    ErrorCode::Query,
                    "learning_rate must be finite and within [0, 1]",
                ));
            }
        }
        RequestOp::Aggregate { .. }
        | RequestOp::Stats
        | RequestOp::Metrics { .. }
        | RequestOp::Shutdown => {}
    }
    Ok(())
}

/// Builds the merged observability export: the facade's `core.*`
/// registry with engine-side gauges freshly sampled, the server's
/// `server.*` registry with the admission counters mirrored into
/// gauges, and the newest `last_spans` spans from the ring.
fn metrics_export(shared: &Shared, last_spans: usize) -> MetricsWire {
    let obs = &shared.obs;
    let counters = shared.counters.snapshot();
    obs.admitted.set(counters.admitted);
    obs.answered.set(counters.answered);
    obs.shed.set(counters.shed);
    obs.deadline_expired.set(counters.deadline_expired);
    obs.drained.set(counters.drained);
    obs.queue_depth
        .set(u64::try_from(shared.queue.len()).unwrap_or(u64::MAX));
    for (i, (admitted, answered)) in shared.shard_counters.snapshot().into_iter().enumerate() {
        // Get-or-create by name: shard count is fixed at start, so after
        // the first export these are lookups, and exports are rare.
        obs.registry
            .gauge(&format!("server.shard{i}.admitted"))
            .set(admitted);
        obs.registry
            .gauge(&format!("server.shard{i}.answered"))
            .set(answered);
    }
    let epoch = shared.vkg.with_published_engine(|pin, _, _| pin.epoch);
    let mut snap = shared.vkg.metrics_snapshot();
    // Mirror the facade's durability counters into `server.wal.*` gauges
    // (before the server registry snapshot below, so one export is
    // internally consistent): the reconciliation harness compares these
    // against the client's `client.retry.*` view of the same writes.
    let core_counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    obs.wal_appended
        .set(core_counter(vkg_core::metrics::names::WAL_APPENDED));
    obs.wal_replayed
        .set(core_counter(vkg_core::metrics::names::WAL_REPLAYED));
    obs.wal_dedup_hits
        .set(core_counter(vkg_core::metrics::names::WAL_DEDUP_HITS));
    let server = obs.registry.snapshot();
    snap.counters.extend(server.counters);
    snap.gauges.extend(server.gauges);
    snap.hists.extend(server.hists);
    // The merge preserves each registry's sorted order per namespace;
    // re-sort so consumers see one name-ordered listing.
    snap.counters.sort();
    snap.gauges.sort();
    snap.hists.sort_by(|a, b| a.0.cmp(&b.0));
    snap.spans = obs.ring.collect(last_spans);
    snap.spans_recorded = obs.ring.recorded();
    snap.spans_dropped = obs.ring.dropped();
    MetricsWire {
        epoch,
        snapshot: snap,
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>, workers: Vec<JoinHandle<()>>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    // seqcst: drain flag; pairs with the SeqCst store in shutdown().
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(shared);
                match thread::Builder::new()
                    .name("vkg-conn".into())
                    .spawn(move || connection_loop(stream, &conn_shared))
                {
                    Ok(handle) => {
                        conns.push(handle);
                        conns.retain(|h| !h.is_finished());
                    }
                    Err(_) => {
                        // Thread exhaustion: the stream was owned by the
                        // failed spawn's closure and dropped with it, so
                        // the client sees a closed connection and can
                        // retry — the server itself keeps serving.
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
    // Drain: the listener drops here (no new connections); connection
    // threads notice the flag at their next read-timeout tick and exit
    // after writing any in-flight response.
    drop(listener);
    for conn in conns {
        let _ = conn.join();
    }
    // No producer remains, so closing the queue lets workers finish the
    // backlog and exit — every admitted job is answered before this
    // returns.
    shared.queue.close();
    for worker in workers {
        let _ = worker.join();
    }
    // Quiesce every shard: acquire and release all shard locks, so any
    // cracking still running on a shard (there should be none — workers
    // joined — but belt and braces against detached readers holding a
    // facade guard) finishes before the drain reports complete.
    shared.vkg.quiesce();
}

/// One thread per connection: reassemble frames, decode, admit, and
/// write back whatever the worker answers. Malformed input fails the
/// connection closed after a best-effort typed error.
fn connection_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(CONN_READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut buf = FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Serve frames already buffered before reading more.
        loop {
            match buf.next_frame(shared.cfg.max_frame) {
                Ok(None) => break,
                Ok(Some(payload)) => {
                    if !serve_frame(&mut stream, shared, &payload) {
                        return;
                    }
                }
                Err(e) => {
                    fail_connection(&mut stream, &e);
                    return;
                }
            }
        }
        // seqcst: drain flag; pairs with the SeqCst store in shutdown().
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // Clean EOF mid-frame means the client truncated a
                // request; either way the conversation is over.
                return;
            }
            // lint: allow(no-panic-on-request-path, read() returns n <= chunk.len() by the io::Read contract)
            Ok(n) => buf.feed(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return,
        }
    }
}

/// Handles one decoded frame. Returns `false` when the connection must
/// close (shutdown acknowledged, malformed request, or I/O failure).
fn serve_frame(stream: &mut TcpStream, shared: &Arc<Shared>, payload: &[u8]) -> bool {
    let mut request = match Request::decode(payload) {
        Ok(r) => r,
        Err(e) => {
            fail_connection(stream, &e);
            return false;
        }
    };
    match request.op {
        RequestOp::Shutdown => {
            // seqcst: drain flag; a wire-triggered drain needs the same
            // total order as shutdown() for the counters invariant.
            shared.draining.store(true, Ordering::SeqCst);
            let _ = send(stream, &Response::ShuttingDown);
            false
        }
        RequestOp::Stats => {
            // Side-effect free: answered inline, bypassing admission
            // control so it stays observable under overload. Takes every
            // shard lock briefly (an atomic cut across shards: the
            // global epoch and all shard epochs are mutually consistent).
            let stats = shared.vkg.with_published_engine(|pin, _, engine| {
                let per_shard = shared.shard_counters.snapshot();
                let shards = pin
                    .shard_epochs
                    .iter()
                    .zip(per_shard)
                    .map(|(&epoch, (admitted, answered))| ShardStatsWire {
                        epoch,
                        admitted,
                        answered,
                    })
                    .collect();
                StatsWire::from_stats(
                    pin.epoch,
                    &engine.merged_stats(),
                    engine.accuracy(),
                    shared.counters.snapshot(),
                    shards,
                )
            });
            send(stream, &Response::Stats(stats)).is_ok()
        }
        RequestOp::Metrics { last_spans } => {
            // Like `Stats`: side-effect free and answered inline,
            // bypassing admission control — observability must stay
            // reachable precisely when the queue is full.
            let export = metrics_export(shared, last_spans as usize);
            send(stream, &Response::Metrics(export)).is_ok()
        }
        _ => {
            // seqcst: drain flag; a request must observe the drain iff
            // it globally follows the store, so drained counts add up.
            if shared.draining.load(Ordering::SeqCst) {
                shared.counters.record_drained();
                return send(stream, &refusal(ErrorCode::Draining, "server is draining")).is_ok();
            }
            if let Err(rejection) = sanitize(shared, &mut request) {
                return send(stream, &rejection).is_ok();
            }
            let deadline = if request.deadline_ms == 0 {
                shared.cfg.default_deadline
            } else {
                Duration::from_millis(u64::from(request.deadline_ms))
            };
            let shard = request_shard(shared, &request);
            let (reply_tx, reply_rx) = mpsc::channel();
            let job = Job {
                // relaxed: a ticket dispenser; span ids need uniqueness,
                // not ordering with any other state.
                id: shared.obs.next_query_id.fetch_add(1, Ordering::Relaxed),
                request,
                shard,
                admitted_at: shared.obs.clock.now(),
                deadline,
                reply: reply_tx,
            };
            match shared.queue.try_push(job) {
                Admission::Admitted => {
                    shared.counters.record_admitted();
                    if let Some(shard) = shard {
                        shared.shard_counters.record_admitted(shard);
                    }
                    match reply_rx.recv() {
                        Ok((response, mut span)) => {
                            // Encode on the connection thread so the
                            // worker is already free; the span is
                            // published only once its last phase is in.
                            let enc_start = shared.obs.clock.now();
                            let payload = encode_bounded(&response);
                            span.encode_ns = shared.obs.clock.now().since(enc_start);
                            shared
                                .obs
                                .latency
                                .record(Duration::from_nanos(span.total_ns()));
                            shared.obs.ring.push(&span);
                            send_payload(stream, &payload).is_ok()
                        }
                        Err(_) => send(
                            stream,
                            &refusal(ErrorCode::Internal, "worker pool disappeared"),
                        )
                        .is_ok(),
                    }
                }
                Admission::QueueFull => {
                    shared.counters.record_shed();
                    send(
                        stream,
                        &refusal(ErrorCode::Overloaded, "admission queue full; back off"),
                    )
                    .is_ok()
                }
                Admission::Closed => {
                    shared.counters.record_drained();
                    send(stream, &refusal(ErrorCode::Draining, "server is draining")).is_ok()
                }
            }
        }
    }
}

fn refusal(code: ErrorCode, message: &str) -> Response {
    Response::Error(ServerError {
        code,
        message: message.to_string(),
    })
}

/// Encodes a response, downgrading one that outgrew the frame limit to
/// a typed error: that is the request's problem, not the connection's,
/// so the caller never sees `write_frame` fail on size.
fn encode_bounded(response: &Response) -> Vec<u8> {
    let payload = response.encode();
    if payload.len() > crate::wire::MAX_FRAME {
        refusal(
            ErrorCode::Query,
            "result exceeds the maximum response frame; request less data",
        )
        .encode()
    } else {
        payload
    }
}

fn send_payload(stream: &mut TcpStream, payload: &[u8]) -> Result<(), WireError> {
    write_frame(stream, payload)?;
    stream.flush()?;
    Ok(())
}

fn send(stream: &mut TcpStream, response: &Response) -> Result<(), WireError> {
    send_payload(stream, &encode_bounded(response))
}

/// Best-effort typed error before failing the connection closed.
fn fail_connection(stream: &mut TcpStream, e: &WireError) {
    let _ = send(
        stream,
        &refusal(ErrorCode::MalformedRequest, &e.to_string()),
    );
}

/// The engine shard a request's relation routes to. Dynamic writes are
/// charged to their relation's shard even though execution takes every
/// shard lock — the *traffic* belongs to that relation. Control
/// operations carry no relation and route nowhere.
fn request_shard(shared: &Shared, request: &Request) -> Option<usize> {
    let relation = match &request.op {
        RequestOp::TopK { relation, .. }
        | RequestOp::TopKFiltered { relation, .. }
        | RequestOp::Aggregate { relation, .. } => *relation,
        RequestOp::AddFactDynamic { r, .. } => *r,
        RequestOp::Stats | RequestOp::Metrics { .. } | RequestOp::Shutdown => return None,
    };
    Some(shared.vkg.shard_of(RelationId(relation)))
}

/// One unit of execution inside a batch: either a same-shard group of
/// relation-routed reads (one shard-lock round for the lot) or a job
/// that must run standalone (dynamic writes, which take every shard
/// lock inside the facade).
enum Unit {
    Group(usize, Vec<Job>),
    Solo(Job),
}

/// Whether a request is a relation-routed read that can share a
/// shard-lock round with same-shard siblings.
fn batchable(op: &RequestOp) -> bool {
    matches!(
        op,
        RequestOp::TopK { .. } | RequestOp::TopKFiltered { .. } | RequestOp::Aggregate { .. }
    )
}

fn worker_loop(shared: &Arc<Shared>) {
    let clock = &shared.obs.clock;
    let batch_max = shared.cfg.batch_max.max(1);
    while let Some(mut batch) = shared.queue.pop_batch(batch_max) {
        let popped = clock.now();
        shared.obs.batch_size.record_us(batch.len() as u64);
        if batch.len() == 1 {
            if let Some(job) = batch.pop() {
                serve_one(shared, job, popped);
            }
            continue;
        }
        // Bucket relation-routed reads by shard, preserving first-seen
        // order; everything else runs standalone in arrival order.
        // Reordering across a batch is unobservable to clients: each
        // connection serializes (it blocks on its reply before sending
        // the next frame), so batched jobs always belong to distinct
        // connections with no cross-ordering obligations.
        let mut units: Vec<Unit> = Vec::new();
        for job in batch {
            match job.shard {
                Some(shard) if batchable(&job.request.op) => {
                    let existing = units.iter_mut().find_map(|u| match u {
                        Unit::Group(s, jobs) if *s == shard => Some(jobs),
                        _ => None,
                    });
                    match existing {
                        Some(jobs) => jobs.push(job),
                        None => units.push(Unit::Group(shard, vec![job])),
                    }
                }
                _ => units.push(Unit::Solo(job)),
            }
        }
        for unit in units {
            match unit {
                Unit::Solo(job) => serve_one(shared, job, popped),
                Unit::Group(shard, jobs) => serve_group(shared, shard, jobs, popped),
            }
        }
    }
}

/// Serves one job on the standalone path (the whole path when
/// `batch_max == 1`): deadline check at unit start, optional think-time
/// fault injection, then `execute`, which takes its own lock round.
fn serve_one(shared: &Arc<Shared>, job: Job, popped: Tick) {
    let clock = &shared.obs.clock;
    let unit_start = clock.now();
    let queue_ns = popped.since(job.admitted_at);
    let waited = unit_start.since(job.admitted_at);
    let (response, locked_at) = if Duration::from_nanos(waited) >= job.deadline {
        shared.counters.record_deadline_expired();
        (
            refusal(
                ErrorCode::DeadlineExceeded,
                "deadline expired while queued; not executed",
            ),
            unit_start,
        )
    } else {
        if let Some(think) = shared.cfg.worker_think_time {
            thread::sleep(think);
        }
        if job.shard.is_some() {
            // One lock round: a read takes its shard's lock, a write
            // takes all of them — either way one acquisition episode.
            shared.obs.lock_rounds.incr();
        }
        execute(&shared.vkg, &job.request, clock)
    };
    let finished = clock.now();
    let span = Span {
        id: job.id,
        op: job.request.op.opcode(),
        shard: job
            .shard
            .map_or(u32::MAX, |s| u32::try_from(s).unwrap_or(u32::MAX)),
        outcome: outcome_of(&response),
        queue_ns,
        // Pop → shard lock held (includes crack-log replay, and the
        // injected think time when the fault-injection knob is set).
        lock_ns: locked_at.since(unit_start),
        exec_ns: finished.since(locked_at),
        // Stamped by the connection thread once the encode is done.
        encode_ns: 0,
        // Time spent behind earlier units of the same batch (zero when
        // this job was popped alone).
        batch_ns: unit_start.since(popped),
        refine_steps: refine_steps_of(&response),
    };
    finish_job(shared, job, response, span);
}

/// Serves a same-shard group of reads under **one** shard-lock round.
///
/// Each job's deadline is re-checked *after* the lock is held: a
/// request can expire while its batch siblings execute (or while the
/// lock round waits behind a writer), and executing it anyway would
/// spend lock time on an answer the client has already written off.
/// Expired jobs are refused with `DeadlineExceeded` — still answered,
/// so `admitted == answered` survives batching.
fn serve_group(shared: &Arc<Shared>, shard: usize, jobs: Vec<Job>, popped: Tick) {
    let clock = &shared.obs.clock;
    let group_start = clock.now();
    shared.obs.lock_rounds.incr();
    let (locked_at, served) = shared
        .vkg
        .with_published_shard_index(shard, |pin, snap, state| {
            let locked_at = clock.now();
            let mut served = Vec::with_capacity(jobs.len());
            for job in jobs {
                let exec_start = clock.now();
                let waited = exec_start.since(job.admitted_at);
                let response = if Duration::from_nanos(waited) >= job.deadline {
                    shared.counters.record_deadline_expired();
                    refusal(
                        ErrorCode::DeadlineExceeded,
                        "deadline expired before execution; not executed",
                    )
                } else {
                    if let Some(think) = shared.cfg.worker_think_time {
                        thread::sleep(think);
                    }
                    execute_pinned(&shared.vkg, &job.request, pin, snap, state)
                };
                served.push((job, response, exec_start, clock.now()));
            }
            (locked_at, served)
        });
    for (job, response, exec_start, finished) in served {
        let span = Span {
            id: job.id,
            op: job.request.op.opcode(),
            shard: u32::try_from(shard).unwrap_or(u32::MAX),
            outcome: outcome_of(&response),
            queue_ns: popped.since(job.admitted_at),
            // The group's shared wait for the shard lock.
            lock_ns: locked_at.since(group_start),
            exec_ns: finished.since(exec_start),
            encode_ns: 0,
            // Waiting on earlier batch units plus on earlier siblings
            // inside this group's lock round.
            batch_ns: group_start
                .since(popped)
                .saturating_add(exec_start.since(locked_at)),
            refine_steps: refine_steps_of(&response),
        };
        finish_job(shared, job, response, span);
    }
}

/// Accounts for one answered job and hands the response back to its
/// connection thread. Every admitted job passes through here exactly
/// once; a hung-up client (closed reply channel) still counts as
/// answered.
fn finish_job(shared: &Arc<Shared>, job: Job, response: Response, span: Span) {
    shared.counters.record_answered();
    if let Some(shard) = job.shard {
        shared.shard_counters.record_answered(shard);
    }
    // The server executes reads inside shard closures, bypassing
    // the facade's own instrumented entry points — mirror the
    // executed reads into the facade registry so `core.queries`
    // stays truthful however the engine is driven. Deadline-refused
    // jobs never reached the engine and are not mirrored.
    let is_read = batchable(&job.request.op);
    if is_read && span.outcome != SpanOutcome::DeadlineExpired {
        shared.vkg.metrics().record_query_timed(
            Duration::from_nanos(span.lock_ns.saturating_add(span.exec_ns)),
            span.refine_steps,
            span.outcome == SpanOutcome::Ok,
        );
    }
    let _ = job.reply.send((response, span));
}

/// The span outcome a response maps to.
fn outcome_of(response: &Response) -> SpanOutcome {
    match response {
        Response::Error(e) if e.code == ErrorCode::DeadlineExceeded => SpanOutcome::DeadlineExpired,
        Response::Error(_) => SpanOutcome::Error,
        _ => SpanOutcome::Ok,
    }
}

/// Refine steps a response reports: S₁ evaluations for top-k answers,
/// entities accessed for aggregates, zero otherwise.
fn refine_steps_of(response: &Response) -> u64 {
    match response {
        Response::TopK(t) => t.s1_evals,
        Response::Aggregate(a) => a.accessed,
        _ => 0,
    }
}

/// Runs one request against the engine. Reads pin a single epoch via
/// `with_published_shard` — taking only the owning relation's shard
/// lock; the dynamic write goes through the facade's serialized `&self`
/// writer path (all shard locks) and reports the post-publish epoch.
///
/// Returns the response plus the tick at which the shard lock was held
/// (closure entry, i.e. after crack-log replay) so the worker can split
/// the span into its lock and execute phases. Paths that take no shard
/// lock report their own start tick, which makes `lock_ns` cover the
/// whole wait (the single-writer path) or nothing (refusals).
fn execute(vkg: &VirtualKnowledgeGraph, request: &Request, clock: &Clock) -> (Response, Tick) {
    match &request.op {
        RequestOp::TopK { relation, .. }
        | RequestOp::TopKFiltered { relation, .. }
        | RequestOp::Aggregate { relation, .. } => {
            vkg.with_published_shard(RelationId(*relation), |pin, snap, state| {
                let locked_at = clock.now();
                (execute_pinned(vkg, request, pin, snap, state), locked_at)
            })
        }
        RequestOp::AddFactDynamic {
            h,
            r,
            t,
            refine_steps,
            learning_rate,
            token,
        } => {
            // The write path acquires every shard lock inside the
            // facade; its span charges the whole call to `exec_ns`.
            // With a WAL attached the facade appends + flushes the
            // record before the index mutation this ack reports.
            let locked_at = clock.now();
            let response = match vkg.add_fact_durable(
                *token,
                EntityId(*h),
                RelationId(*r),
                EntityId(*t),
                *refine_steps as usize,
                *learning_rate,
            ) {
                // The facade reports the epoch of *this* write (taken while
                // it held the engine lock), so a concurrent writer publishing
                // right after cannot leak its later epoch into this response.
                Ok((added, epoch)) => Response::FactAdded {
                    added,
                    epoch,
                    token: *token,
                },
                Err(e) => Response::Error(ServerError::query(&e)),
            };
            (response, locked_at)
        }
        RequestOp::Stats | RequestOp::Metrics { .. } | RequestOp::Shutdown => (
            refusal(ErrorCode::Internal, "control requests are not queued"),
            clock.now(),
        ),
    }
}

/// Runs one relation-routed read against an already-locked shard — the
/// shared execution core of the standalone path (`execute` wraps it in
/// its own lock round) and the batched path (`serve_group` drives many
/// requests through one round). All three reads go through the facade's
/// cache-aware pinned entry points, so cached answers — validated
/// against the pin's exact epochs — serve identically on either path.
fn execute_pinned(
    vkg: &VirtualKnowledgeGraph,
    request: &Request,
    pin: ShardPin,
    snap: &VkgSnapshot,
    state: &mut IndexState,
) -> Response {
    match &request.op {
        RequestOp::TopK {
            entity,
            relation,
            direction,
            k,
        } => {
            match vkg.top_k_pinned(
                pin,
                snap,
                state,
                EntityId(*entity),
                RelationId(*relation),
                *direction,
                *k as usize,
            ) {
                Ok(r) => Response::TopK(TopKWire::from_result(pin.epoch, &r)),
                Err(e) => Response::Error(ServerError::query(&e)),
            }
        }
        RequestOp::TopKFiltered {
            entity,
            relation,
            direction,
            k,
            filter,
        } => {
            let graph = snap.graph();
            let accept: Box<dyn Fn(EntityId) -> bool> = match filter {
                WireFilter::NamePrefix(prefix) => Box::new(move |id: EntityId| {
                    graph.entity_name(id).is_some_and(|n| n.starts_with(prefix))
                }),
                WireFilter::IdRange { lo, hi } => {
                    let (lo, hi) = (*lo, *hi);
                    Box::new(move |id: EntityId| lo <= id.0 && id.0 < hi)
                }
            };
            // The wire encoding doubles as the cache key's filter
            // fingerprint: equal bytes ⇒ equal predicate.
            let fingerprint = filter.fingerprint();
            match vkg.top_k_filtered_pinned(
                pin,
                snap,
                state,
                EntityId(*entity),
                RelationId(*relation),
                *direction,
                *k as usize,
                Some(&fingerprint),
                &accept,
            ) {
                Ok(r) => Response::TopK(TopKWire::from_result(pin.epoch, &r)),
                Err(e) => Response::Error(ServerError::query(&e)),
            }
        }
        RequestOp::Aggregate {
            entity,
            relation,
            direction,
            ..
        } => match request.aggregate_spec() {
            // Decoding guarantees aggregate ops carry a spec, but a
            // refusal here is cheaper to reason about than a panic in a
            // worker thread if that invariant ever drifts.
            None => refusal(ErrorCode::Internal, "aggregate request lost its spec"),
            Some(spec) => {
                match vkg.aggregate_pinned(
                    pin,
                    snap,
                    state,
                    EntityId(*entity),
                    RelationId(*relation),
                    *direction,
                    &spec,
                ) {
                    Ok(r) => Response::Aggregate(AggregateWire::from_result(pin.epoch, &r)),
                    Err(e) => Response::Error(ServerError::query(&e)),
                }
            }
        },
        _ => refusal(
            ErrorCode::Internal,
            "only relation-routed reads execute pinned",
        ),
    }
}
