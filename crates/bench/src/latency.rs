//! Latency histogram for the serving-layer load generator.
//!
//! The hand-rolled geometric histogram that used to live here moved
//! into `vkg-obs` (as [`vkg::obs::Histogram`]) when the observability
//! subsystem landed, so the server, the facade registry, and this load
//! generator all bucket latencies identically — which is what makes the
//! server-vs-client quantile cross-check in `serve_load --check`
//! meaningful. This module is now a thin re-export plus the
//! bench-side property tests that pin the merge and exposition
//! behaviour the cross-check relies on.

pub use vkg::obs::Histogram;

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use proptest::prelude::*;
    use vkg::obs::{expo, HistSnapshot, MetricsSnapshot};

    use super::Histogram;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn quantiles_bounded_by_bucket_error() {
        let mut h = Histogram::new();
        for us in 1..=10_000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.len(), 10_000);
        for (q, exact) in [(0.50, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q).as_micros() as f64;
            let rel = (got - exact).abs() / exact;
            assert!(rel < 0.10, "q{q}: got {got}, want ≈{exact}");
        }
        assert_eq!(h.max(), Duration::from_micros(10_000));
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..1000u64 {
            let d = Duration::from_micros(i * 17 % 4096);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            whole.record(d);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    proptest! {
        /// Merged quantiles are sandwiched: for every q, the merged
        /// histogram's quantile is at least the smaller of the two
        /// parts' quantiles and never exceeds the exact maximum over
        /// both parts (`max(a.max(), b.max())`).
        #[test]
        fn merge_quantiles_bounded_by_parts(
            xs in prop::collection::vec(0u64..2_000_000, 1..200),
            ys in prop::collection::vec(0u64..2_000_000, 1..200),
        ) {
            let mut a = Histogram::new();
            let mut b = Histogram::new();
            for &us in &xs {
                a.record_us(us);
            }
            for &us in &ys {
                b.record_us(us);
            }
            let mut merged = a.clone();
            merged.merge(&b);
            prop_assert_eq!(merged.len(), a.len() + b.len());
            prop_assert_eq!(merged.max_us(), a.max_us().max(b.max_us()));
            for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                let m = merged.quantile(q);
                prop_assert!(m >= a.quantile(q).min(b.quantile(q)),
                    "q{}: merged {:?} below both parts", q, m);
                prop_assert!(m <= a.max().max(b.max()),
                    "q{}: merged {:?} above max(a, b)", q, m);
            }
        }

        /// A histogram survives the snapshot → text exposition → parse
        /// → rebuild path with every quantile intact — the load
        /// generator's `--metrics-out` artifact is lossless.
        #[test]
        fn exposition_roundtrip_preserves_quantiles(
            xs in prop::collection::vec(0u64..10_000_000, 0..300),
        ) {
            let mut h = Histogram::new();
            for &us in &xs {
                h.record_us(us);
            }
            let snap = MetricsSnapshot {
                hists: vec![("client.latency_us".into(), HistSnapshot::from_histogram(&h))],
                ..MetricsSnapshot::default()
            };
            let parsed = expo::parse(&expo::render(&snap)).expect("render output must parse");
            prop_assert_eq!(&parsed, &snap);
            let back = parsed.hist("client.latency_us").expect("hist present").to_histogram();
            prop_assert_eq!(&back, &h);
            for q in [0.0, 0.5, 0.99, 1.0] {
                prop_assert_eq!(back.quantile(q), h.quantile(q));
            }
        }
    }
}
