//! The virtual knowledge graph facade (Definition 1).
//!
//! Assembles an immutable, `Arc`-shared [`VkgSnapshot`] (graph +
//! attributes + embeddings + JL transform) with a lock-guarded
//! [`IndexState`] (the cracking index and its query pipelines) into one
//! queryable object. The split means the lock guards **only** the index:
//! any number of readers resolve entities, embeddings and query points
//! through the snapshot without ever touching the lock, while queries —
//! which may crack the index — serialize on the engine's write lock.
//!
//! Dynamic updates are **epoch-swapped**: every write takes `&self`,
//! serializes on the engine lock (single-writer), builds a fresh
//! snapshot, and *publishes* it by swapping the shared `Arc` and bumping
//! the epoch counter. Readers holding an older `Arc` clone keep a
//! consistent pre-update view; new readers pick up the new epoch with a
//! single pointer load. This is the concurrency contract the serving
//! layer (`vkg-server`) extends across the process boundary. Snapshots
//! share components structurally ([`VkgSnapshot`] holds each store
//! behind its own `Arc`), so per-write cost is proportional to the
//! component the write mutates — not to the whole dataset.
//!
//! Queries follow the paper's default E′-only semantics: results never
//! include edges already in `E`, nor the query entity itself.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use vkg_embed::EmbeddingStore;
use vkg_kg::{AttributeStore, EntityId, KnowledgeGraph, RelationId};
use vkg_sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::config::VkgConfig;
use crate::engine::{IndexState, QueryEngine};
use crate::error::{VkgError, VkgResult};
use crate::index::CrackingIndex;
use crate::query::aggregate::{AggregateResult, AggregateSpec};
use crate::query::topk::TopKResult;
use crate::snapshot::VkgSnapshot;
use crate::stats::IndexStats;

pub use crate::snapshot::Direction;

/// Former name of the facade's error type, kept as an alias after query
/// errors became the workspace-wide [`VkgError`].
pub type QueryError = VkgError;

/// Read access to the facade's index, holding the engine's read lock for
/// the guard's lifetime.
pub struct IndexGuard<'a>(RwLockReadGuard<'a, IndexState>);

impl Deref for IndexGuard<'_> {
    type Target = CrackingIndex;

    fn deref(&self) -> &CrackingIndex {
        self.0.index()
    }
}

/// Exclusive access to the facade's index, holding the engine's write
/// lock for the guard's lifetime.
pub struct IndexGuardMut<'a>(RwLockWriteGuard<'a, IndexState>);

impl Deref for IndexGuardMut<'_> {
    type Target = CrackingIndex;

    fn deref(&self) -> &CrackingIndex {
        self.0.index()
    }
}

impl DerefMut for IndexGuardMut<'_> {
    fn deref_mut(&mut self) -> &mut CrackingIndex {
        self.0.index_mut()
    }
}

/// A borrow projected out of the currently-published snapshot.
///
/// The facade's component accessors ([`VirtualKnowledgeGraph::graph`]
/// and friends) hand these out instead of plain references because the
/// published snapshot can be *swapped* by a concurrent dynamic update:
/// the `SnapRef` pins the epoch it was taken at (an `Arc` clone), so the
/// borrow stays valid — and internally consistent — however long it is
/// held, without holding any lock.
pub struct SnapRef<T: ?Sized + 'static> {
    snap: Arc<VkgSnapshot>,
    project: fn(&VkgSnapshot) -> &T,
}

impl<T: ?Sized> Deref for SnapRef<T> {
    type Target = T;

    fn deref(&self) -> &T {
        (self.project)(&self.snap)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for SnapRef<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// The published read side: the current snapshot plus the epoch counter
/// that advances on every publication.
#[derive(Debug)]
struct Published {
    epoch: u64,
    snap: Arc<VkgSnapshot>,
}

/// A knowledge graph extended with predicted, probabilistic edges, indexed
/// for predictive top-k and aggregate queries.
///
/// All query **and update** methods take `&self`: reads go through the
/// currently-published snapshot lock-free, index mutations a query
/// implies (cracking) serialize behind the internal engine lock, and
/// dynamic updates act as a single writer that publishes a fresh
/// snapshot epoch. The facade is `Send + Sync` and is shared behind an
/// `Arc` by the serving layer with no outer lock.
#[derive(Debug)]
pub struct VirtualKnowledgeGraph {
    published: RwLock<Published>,
    engine: RwLock<IndexState>,
}

impl VirtualKnowledgeGraph {
    /// Assembles a virtual knowledge graph with an **online cracking**
    /// index (starts as a root-only tree; queries shape it).
    ///
    /// # Panics
    /// Panics if the embedding store's entity count does not match the
    /// graph's, or the configuration is invalid. Use
    /// [`VirtualKnowledgeGraph::try_assemble`] to handle these as errors.
    pub fn assemble(
        graph: KnowledgeGraph,
        attributes: AttributeStore,
        embeddings: EmbeddingStore,
        config: VkgConfig,
    ) -> Self {
        match Self::try_assemble(graph, attributes, embeddings, config) {
            Ok(vkg) => vkg,
            // lint: allow(no-unwrap, documented `# Panics` contract; try_assemble is the fallible form)
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`VirtualKnowledgeGraph::assemble`].
    pub fn try_assemble(
        graph: KnowledgeGraph,
        attributes: AttributeStore,
        embeddings: EmbeddingStore,
        config: VkgConfig,
    ) -> VkgResult<Self> {
        let snapshot = Arc::new(VkgSnapshot::new(graph, attributes, embeddings, config)?);
        let engine = RwLock::with_name(IndexState::cracking(&snapshot), "vkg.engine");
        Ok(Self {
            published: RwLock::with_name(
                Published {
                    epoch: 0,
                    snap: snapshot,
                },
                "vkg.published",
            ),
            engine,
        })
    }

    /// Assembles with a fully **bulk-loaded** offline index (the
    /// BULKLOADCHUNK baseline of §VI).
    ///
    /// # Panics
    /// Panics under the same conditions as
    /// [`VirtualKnowledgeGraph::assemble`].
    pub fn assemble_bulk_loaded(
        graph: KnowledgeGraph,
        attributes: AttributeStore,
        embeddings: EmbeddingStore,
        config: VkgConfig,
    ) -> Self {
        match Self::try_assemble_bulk_loaded(graph, attributes, embeddings, config) {
            Ok(vkg) => vkg,
            // lint: allow(no-unwrap, documented `# Panics` contract; try_assemble_bulk_loaded is the fallible form)
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`VirtualKnowledgeGraph::assemble_bulk_loaded`].
    pub fn try_assemble_bulk_loaded(
        graph: KnowledgeGraph,
        attributes: AttributeStore,
        embeddings: EmbeddingStore,
        config: VkgConfig,
    ) -> VkgResult<Self> {
        let snapshot = Arc::new(VkgSnapshot::new(graph, attributes, embeddings, config)?);
        let engine = RwLock::with_name(IndexState::bulk_loaded(&snapshot), "vkg.engine");
        Ok(Self {
            published: RwLock::with_name(
                Published {
                    epoch: 0,
                    snap: snapshot,
                },
                "vkg.published",
            ),
            engine,
        })
    }

    /// The immutable read side, shareable across threads. Clones of this
    /// `Arc` stay valid (and lock-free) while other threads query — they
    /// observe the snapshot as of the clone, unaffected by later dynamic
    /// updates (which publish a fresh snapshot).
    pub fn snapshot(&self) -> Arc<VkgSnapshot> {
        self.published.read().snap.clone()
    }

    /// The currently-published `(epoch, snapshot)` pair, read atomically.
    /// The epoch starts at 0 and advances by one per dynamic update, so
    /// two reads with equal epochs saw byte-identical snapshots.
    pub fn published(&self) -> (u64, Arc<VkgSnapshot>) {
        let p = self.published.read();
        (p.epoch, p.snap.clone())
    }

    /// The current snapshot epoch (number of published dynamic updates).
    pub fn epoch(&self) -> u64 {
        self.published.read().epoch
    }

    /// The materialized knowledge graph (pinned at the current epoch).
    pub fn graph(&self) -> SnapRef<KnowledgeGraph> {
        SnapRef {
            snap: self.snapshot(),
            project: VkgSnapshot::graph,
        }
    }

    /// The attribute store (pinned at the current epoch).
    pub fn attributes(&self) -> SnapRef<AttributeStore> {
        SnapRef {
            snap: self.snapshot(),
            project: VkgSnapshot::attributes,
        }
    }

    /// The embedding store, space S₁ (pinned at the current epoch).
    pub fn embeddings(&self) -> SnapRef<EmbeddingStore> {
        SnapRef {
            snap: self.snapshot(),
            project: VkgSnapshot::embeddings,
        }
    }

    /// The configuration in effect (pinned at the current epoch).
    pub fn config(&self) -> SnapRef<VkgConfig> {
        SnapRef {
            snap: self.snapshot(),
            project: VkgSnapshot::config,
        }
    }

    /// Index statistics (splits, nodes, per-query access counters).
    pub fn index_stats(&self) -> IndexStats {
        *self.engine.read().index().stats()
    }

    /// Number of index nodes (Fig. 9 metric).
    pub fn index_node_count(&self) -> usize {
        self.engine.read().index().node_count()
    }

    /// Approximate index size in bytes (Figs. 10–11 metric).
    pub fn index_bytes(&self) -> usize {
        self.engine.read().index().index_bytes()
    }

    /// Resets the per-query access counters.
    pub fn reset_access_counters(&self) {
        self.engine.write().reset_access_counters();
    }

    /// The query center in S₁ for an entity/relation/direction.
    pub fn query_point_s1(
        &self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
    ) -> VkgResult<Vec<f64>> {
        self.snapshot().query_point_s1(entity, relation, direction)
    }

    /// Runs `f` with the engine lock held against the currently-published
    /// snapshot — the epoch-consistent entry point the serving layer
    /// builds on. While `f` runs no dynamic update can publish (writers
    /// also hold the engine lock), so the epoch handed to `f` is exact
    /// for the whole call.
    ///
    /// `f` must not call back into this facade (the engine lock is not
    /// reentrant).
    pub fn with_published_engine<R>(
        &self,
        f: impl FnOnce(u64, &VkgSnapshot, &mut IndexState) -> R,
    ) -> R {
        let mut engine = self.engine.write();
        let (epoch, snap) = self.published();
        f(epoch, &snap, &mut engine)
    }

    /// Top-k predicted entities for `(entity, relation)` in `direction`
    /// (Q1-style queries; Algorithm 3).
    pub fn top_k(
        &self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
    ) -> VkgResult<TopKResult> {
        self.with_published_engine(|_, snap, engine| {
            engine.top_k(snap, entity, relation, direction, k)
        })
    }

    /// Top-k restricted to entities accepted by `filter` (e.g. only
    /// movies). The E′ semantics (skip known edges, skip self) always
    /// apply on top of the filter.
    pub fn top_k_filtered(
        &self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        k: usize,
        filter: impl Fn(EntityId) -> bool,
    ) -> VkgResult<TopKResult> {
        self.with_published_engine(|_, snap, engine| {
            engine.top_k_filtered(snap, entity, relation, direction, k, &filter)
        })
    }

    /// Answers an aggregate query over the probability ball around the
    /// query center (§V-B).
    pub fn aggregate(
        &self,
        entity: EntityId,
        relation: RelationId,
        direction: Direction,
        spec: &AggregateSpec,
    ) -> VkgResult<AggregateResult> {
        self.with_published_engine(|_, snap, engine| {
            engine.aggregate(snap, entity, relation, direction, spec)
        })
    }

    // ------------------------------------------------------------------
    // Dynamic knowledge-graph updates (the paper's §VIII future work:
    // "when there are local updates, the embedding changes should be
    // local too, as most (h, r, t) soft constraints still hold. We plan
    // to do incremental updates on our partial index.")
    //
    // Updates take `&self` and act as a single writer: they serialize on
    // the engine's write lock, build the next snapshot off to the side
    // (cloning is cheap — components are Arc-shared, and the CoW
    // mutators copy only the stores a write touches), and publish it
    // with an epoch bump. Concurrent readers holding an older snapshot
    // clone keep a consistent (pre-update) view.
    // ------------------------------------------------------------------

    /// Publishes `next` as the new snapshot epoch. Callers must hold the
    /// engine write lock so the index and the published snapshot advance
    /// together.
    fn publish(&self, next: VkgSnapshot) -> u64 {
        let mut p = self.published.write();
        p.epoch += 1;
        p.snap = Arc::new(next);
        p.epoch
    }

    /// Adds a new entity with a known S₁ embedding (e.g. produced by the
    /// external embedding pipeline for a cold-start item). The entity is
    /// projected into S₂ and spliced into the partial index in place — no
    /// rebuild.
    ///
    /// # Errors
    /// A typed [`VkgError`] if the embedding's dimensionality does not
    /// match the store or the dense id space is exhausted; the failed
    /// write publishes nothing.
    ///
    /// # Panics
    /// Panics if the S₁ embedding length disagrees with the embedding
    /// store (caught before any index mutation).
    pub fn add_entity_dynamic(&self, name: &str, s1_embedding: &[f64]) -> VkgResult<EntityId> {
        let mut engine = self.engine.write();
        let mut next = (*self.snapshot()).clone();
        let id = next.graph_mut().add_entity(name);
        if id.index() < next.embeddings().num_entities() {
            // The name was already interned — treat as an embedding update.
            next.embeddings_mut()
                .entity_mut(id)
                .copy_from_slice(s1_embedding);
            let s2 = next.transform().apply(s1_embedding);
            engine.index_mut().update_point(id.0, &s2)?;
            self.publish(next);
            return Ok(id);
        }
        let store_id = next.embeddings_mut().push_entity(s1_embedding);
        debug_assert_eq!(store_id, id, "graph and store ids must stay aligned");
        let s2 = next.transform().apply(s1_embedding);
        let point_id = engine.index_mut().insert_point(&s2)?;
        debug_assert_eq!(point_id, id.0, "index point ids must stay aligned");
        self.publish(next);
        Ok(id)
    }

    /// Adds a fact `(h, r, t)` to `E` and locally refines the embeddings:
    /// `refine_steps` gradient steps pull `h + r` toward `t` (the TransE
    /// positive-pair objective, no negative sampling — a *local* change,
    /// per the paper's intuition that local graph updates should move
    /// embeddings locally). Both endpoints' S₂ points are updated in the
    /// partial index in place.
    ///
    /// Returns `(added, epoch)`: whether the edge was new, and the exact
    /// epoch this write published (for a duplicate, the epoch current
    /// while the write held the engine lock — no publication happens).
    pub fn add_fact_dynamic(
        &self,
        h: EntityId,
        r: RelationId,
        t: EntityId,
        refine_steps: usize,
        learning_rate: f64,
    ) -> VkgResult<(bool, u64)> {
        let mut engine = self.engine.write();
        let cur = self.snapshot();
        cur.check_ids(h, r)?;
        cur.check_ids(t, r)?;
        let mut next = (*cur).clone();
        let added = next.graph_mut().add_triple(h, r, t)?;
        if !added {
            // The engine lock is still held, so no concurrent writer can
            // publish between the duplicate check and this epoch read.
            return Ok((false, self.epoch()));
        }
        let d = next.embeddings().dim();
        for _ in 0..refine_steps {
            let mut grad = vec![0.0; d];
            {
                let embeddings = next.embeddings();
                let (hv, rv, tv) = (
                    embeddings.entity(h),
                    embeddings.relation(r),
                    embeddings.entity(t),
                );
                for (i, g) in grad.iter_mut().enumerate().take(d) {
                    *g = 2.0 * (hv[i] + rv[i] - tv[i]);
                }
            }
            let embeddings = next.embeddings_mut();
            for (i, &g) in grad.iter().enumerate().take(d) {
                embeddings.entity_mut(h)[i] -= learning_rate * g;
                embeddings.entity_mut(t)[i] += learning_rate * g;
            }
        }
        let h_s2 = next.transform().apply(next.embeddings().entity(h));
        engine.index_mut().update_point(h.0, &h_s2)?;
        let t_s2 = next.transform().apply(next.embeddings().entity(t));
        engine.index_mut().update_point(t.0, &t_s2)?;
        let epoch = self.publish(next);
        Ok((true, epoch))
    }

    /// Sets (or updates) an attribute of an entity — aggregate queries
    /// observe the new value from the next epoch on.
    pub fn set_attribute_dynamic(&self, attr: &str, entity: EntityId, value: f64) {
        let _engine = self.engine.write();
        let mut next = (*self.snapshot()).clone();
        next.attributes_mut().set(attr, entity, value);
        self.publish(next);
    }

    /// Direct read access to the index (benchmarks, invariant checks).
    /// Holds the engine's read lock while the guard lives.
    pub fn index(&self) -> IndexGuard<'_> {
        IndexGuard(self.engine.read())
    }

    /// Exclusive access to the index. Holds the engine's write lock while
    /// the guard lives — readers of [`VirtualKnowledgeGraph::graph`] /
    /// [`VirtualKnowledgeGraph::embeddings`] are *not* blocked.
    pub fn index_mut(&self) -> IndexGuardMut<'_> {
        IndexGuardMut(self.engine.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SplitStrategy;
    use crate::query::aggregate::AggregateKind;

    /// A small synthetic world with hand-crafted geometry:
    /// users u0..u3 at distinct positions, items m0..m5 clustered so that
    /// u's "+likes" lands near specific items.
    fn tiny_world(dim: usize) -> (KnowledgeGraph, AttributeStore, EmbeddingStore) {
        let mut g = KnowledgeGraph::new();
        let likes = g.add_relation("likes");
        let users: Vec<_> = (0..4).map(|i| g.add_entity(&format!("u{i}"))).collect();
        let items: Vec<_> = (0..6).map(|i| g.add_entity(&format!("m{i}"))).collect();
        // u0 already likes m0 (edge in E — must be skipped by queries).
        g.add_triple(users[0], likes, items[0]).unwrap();

        // Embeddings: dim-d vectors. Items sit at x = 10 + i, users at
        // x = i, relation "likes" translates by +10, so u_i + likes ≈ m_i.
        let mut ent = vec![0.0; 10 * dim];
        for (i, _) in users.iter().enumerate() {
            ent[i * dim] = i as f64;
        }
        for (j, _) in items.iter().enumerate() {
            ent[(4 + j) * dim] = 10.0 + j as f64;
            ent[(4 + j) * dim + 1] = 0.5; // offset so items aren't colinear
        }
        let mut rel = vec![0.0; dim];
        rel[0] = 10.0;
        rel[1] = 0.5;
        let store = EmbeddingStore::from_raw(dim, ent, rel);

        let mut attrs = AttributeStore::new();
        for (j, &m) in items.iter().enumerate() {
            attrs.set("year", m, 2000.0 + j as f64);
        }
        (g, attrs, store)
    }

    fn config() -> VkgConfig {
        VkgConfig {
            alpha: 3,
            epsilon: 3.0,
            leaf_capacity: 2,
            fanout: 2,
            beta: 2.0,
            split_strategy: SplitStrategy::Greedy,
            query_aware_cost: true,
            transform_seed: 7,
            threads: 1,
        }
    }

    #[test]
    fn top_k_finds_nearest_unknown_item() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let r = vkg.top_k(u0, likes, Direction::Tails, 2).unwrap();
        assert_eq!(r.predictions.len(), 2);
        let graph = vkg.graph();
        let names: Vec<&str> = r
            .predictions
            .iter()
            .map(|p| graph.entity_name(EntityId(p.id)).unwrap())
            .collect();
        // m0 is a known edge → skipped; the nearest predictions are m1
        // then m2 (u0 + likes = (10, 0.5): m1 at distance 1 along x ...
        // actually m0 at 0 is skipped, m1 at 1, m2 at 2).
        assert_eq!(names, vec!["m1", "m2"]);
        assert_eq!(r.predictions[0].probability, 1.0);
    }

    #[test]
    fn heads_query_inverts_translation() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let m2 = vkg.graph().entity_id("m2").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        // m2 − likes = (2, 0, …) → nearest user is u2.
        let r = vkg.top_k(m2, likes, Direction::Heads, 1).unwrap();
        let graph = vkg.graph();
        let name = graph.entity_name(EntityId(r.predictions[0].id)).unwrap();
        assert_eq!(name, "u2");
    }

    #[test]
    fn filter_restricts_candidates() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        // Restrict to even-numbered items.
        let graph = vkg.graph().clone();
        let r = vkg
            .top_k_filtered(u0, likes, Direction::Tails, 2, |e| {
                graph
                    .entity_name(e)
                    .is_some_and(|n| n.starts_with('m') && n[1..].parse::<u32>().unwrap() % 2 == 0)
            })
            .unwrap();
        let names: Vec<&str> = r
            .predictions
            .iter()
            .map(|p| graph.entity_name(EntityId(p.id)).unwrap())
            .collect();
        assert_eq!(names, vec!["m2", "m4"], "m0 is a known edge");
    }

    #[test]
    fn aggregate_count_over_ball() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let r = vkg
            .aggregate(u0, likes, Direction::Tails, &AggregateSpec::count(0.05))
            .unwrap();
        assert!(r.ball_size >= 1);
        assert!(r.estimate >= 1.0, "closest entity alone contributes 1");
        assert!(r.estimate <= r.ball_size as f64);
    }

    #[test]
    fn aggregate_avg_year() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let spec = AggregateSpec::of(AggregateKind::Avg, "year", 0.05);
        let r = vkg.aggregate(u0, likes, Direction::Tails, &spec).unwrap();
        assert!(
            (2000.0..=2005.0).contains(&r.estimate),
            "avg year {} outside item range",
            r.estimate
        );
    }

    #[test]
    fn aggregate_rejects_unknown_attribute() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let spec = AggregateSpec::of(AggregateKind::Avg, "nonexistent", 0.05);
        assert!(matches!(
            vkg.aggregate(u0, likes, Direction::Tails, &spec),
            Err(QueryError::UnknownAttribute(_))
        ));
        let spec = AggregateSpec {
            kind: AggregateKind::Sum,
            attribute: None,
            p_tau: 0.05,
            sample_size: None,
        };
        assert!(matches!(
            vkg.aggregate(u0, likes, Direction::Tails, &spec),
            Err(QueryError::MissingAttribute)
        ));
    }

    #[test]
    fn unknown_ids_rejected() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let likes = vkg.graph().relation_id("likes").unwrap();
        assert!(matches!(
            vkg.top_k(EntityId(999), likes, Direction::Tails, 3),
            Err(QueryError::UnknownEntity(999))
        ));
        let u0 = vkg.graph().entity_id("u0").unwrap();
        assert!(matches!(
            vkg.top_k(u0, RelationId(42), Direction::Tails, 3),
            Err(QueryError::UnknownRelation(42))
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        assert!(matches!(
            vkg.top_k(u0, likes, Direction::Tails, 0),
            Err(QueryError::InvalidParameter(_))
        ));
        let spec = AggregateSpec::count(1.5);
        assert!(matches!(
            vkg.aggregate(u0, likes, Direction::Tails, &spec),
            Err(QueryError::InvalidParameter(_))
        ));
    }

    #[test]
    fn try_assemble_reports_mismatch() {
        let (g, attrs, _) = tiny_world(8);
        let short = EmbeddingStore::from_raw(8, vec![0.0; 8], vec![0.0; 8]);
        assert!(matches!(
            VirtualKnowledgeGraph::try_assemble(g, attrs, short, config()),
            Err(VkgError::Mismatch { .. })
        ));
    }

    #[test]
    fn bulk_loaded_agrees_with_cracking() {
        let (g, attrs, emb) = tiny_world(8);
        let online =
            VirtualKnowledgeGraph::assemble(g.clone(), attrs.clone(), emb.clone(), config());
        let bulk = VirtualKnowledgeGraph::assemble_bulk_loaded(g, attrs, emb, config());
        let u1 = online.graph().entity_id("u1").unwrap();
        let likes = online.graph().relation_id("likes").unwrap();
        let a = online.top_k(u1, likes, Direction::Tails, 3).unwrap();
        let b = bulk.top_k(u1, likes, Direction::Tails, 3).unwrap();
        assert_eq!(
            a.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
            b.predictions.iter().map(|p| p.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn queries_crack_the_index() {
        let (g, attrs, emb) = tiny_world(8);
        // A tight ε keeps the query region smaller than the whole space
        // (with the default ε = 3 the tiny world's region covers all ten
        // points and the stop condition correctly leaves the root alone).
        let cfg = VkgConfig {
            epsilon: 0.3,
            ..config()
        };
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, cfg);
        assert_eq!(vkg.index_node_count(), 1);
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let _ = vkg.top_k(u0, likes, Direction::Tails, 2).unwrap();
        assert!(vkg.index_node_count() > 1);
        vkg.index().check_invariants();
    }

    #[test]
    fn snapshot_clone_survives_dynamic_update() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let before = vkg.snapshot();
        let n = before.graph().num_entities();
        let dim = before.embeddings().dim();
        vkg.add_entity_dynamic("m_new", &vec![20.0; dim])
            .expect("well-shaped embedding");
        // The old snapshot is frozen; the facade sees the new entity.
        assert_eq!(before.graph().num_entities(), n);
        assert_eq!(vkg.graph().num_entities(), n + 1);
    }

    #[test]
    fn epoch_advances_once_per_publication() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        assert_eq!(vkg.epoch(), 0);
        let dim = vkg.embeddings().dim();
        vkg.add_entity_dynamic("m_new", &vec![20.0; dim])
            .expect("well-shaped embedding");
        assert_eq!(vkg.epoch(), 1);
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let m_new = vkg.graph().entity_id("m_new").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        // Queries never advance the epoch.
        let _ = vkg.top_k(u0, likes, Direction::Tails, 2).unwrap();
        assert_eq!(vkg.epoch(), 1);
        // The write reports the exact epoch it published.
        assert_eq!(
            vkg.add_fact_dynamic(u0, likes, m_new, 2, 0.01).unwrap(),
            (true, 2)
        );
        assert_eq!(vkg.epoch(), 2);
        // A duplicate fact is a no-op, publishes nothing, and reports
        // the epoch current during the (serialized) write.
        assert_eq!(
            vkg.add_fact_dynamic(u0, likes, m_new, 2, 0.01).unwrap(),
            (false, 2)
        );
        assert_eq!(vkg.epoch(), 2);
        vkg.set_attribute_dynamic("year", m_new, 2020.0);
        assert_eq!(vkg.epoch(), 3);
        // `published()` reads the pair atomically.
        let (epoch, snap) = vkg.published();
        assert_eq!(epoch, 3);
        assert_eq!(snap.graph().num_entities(), vkg.graph().num_entities());
    }

    #[test]
    fn dynamic_updates_take_shared_reference_behind_arc() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = std::sync::Arc::new(VirtualKnowledgeGraph::assemble(g, attrs, emb, config()));
        let likes = vkg.graph().relation_id("likes").unwrap();
        let u1 = vkg.graph().entity_id("u1").unwrap();
        let m3 = vkg.graph().entity_id("m3").unwrap();
        // No outer lock: the Arc alone suffices for the single writer.
        let writer = {
            let vkg = std::sync::Arc::clone(&vkg);
            std::thread::spawn(move || vkg.add_fact_dynamic(u1, likes, m3, 2, 0.01).unwrap())
        };
        assert!(writer.join().unwrap().0);
        assert!(vkg.graph().tails(u1, likes).any(|e| e == m3));
    }

    #[test]
    fn with_published_engine_pins_one_epoch() {
        let (g, attrs, emb) = tiny_world(8);
        let vkg = VirtualKnowledgeGraph::assemble(g, attrs, emb, config());
        let u0 = vkg.graph().entity_id("u0").unwrap();
        let likes = vkg.graph().relation_id("likes").unwrap();
        let (epoch, ids) = vkg.with_published_engine(|epoch, snap, engine| {
            let r = engine.top_k(snap, u0, likes, Direction::Tails, 2).unwrap();
            (
                epoch,
                r.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
            )
        });
        assert_eq!(epoch, 0);
        assert_eq!(ids.len(), 2);
    }
}
