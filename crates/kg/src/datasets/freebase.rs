//! Freebase-like dataset generator.
//!
//! The distinguishing features of Freebase in the paper's evaluation are
//! (a) a *large number of relationship types* (2,355 in Table I) — the very
//! thing H2-ALSH cannot handle — and (b) heterogeneous, type-clustered
//! entities with power-law degrees. This generator reproduces both:
//! entities are partitioned into type clusters ("domains"), each relation
//! type has a fixed (head-type, tail-type) signature, and heads/tails are
//! Zipf-sampled within their clusters. Relation frequencies themselves are
//! Zipfian (a few relations like `/type/object/type` dominate).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::Dataset;
use crate::attributes::AttributeStore;
use crate::graph::KnowledgeGraph;
use crate::zipf::Zipf;

/// Configuration for [`freebase_like`].
#[derive(Debug, Clone)]
pub struct FreebaseConfig {
    /// Number of entities.
    pub entities: usize,
    /// Number of relationship types.
    pub relation_types: usize,
    /// Number of entity-type clusters ("domains").
    pub type_clusters: usize,
    /// Total number of edges to generate (before de-duplication).
    pub edges: usize,
    /// Zipf exponent for entity popularity within a cluster.
    pub entity_zipf: f64,
    /// Zipf exponent for relation-type frequency.
    pub relation_zipf: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FreebaseConfig {
    fn default() -> Self {
        Self {
            entities: 20_000,
            relation_types: 200,
            type_clusters: 25,
            edges: 60_000,
            entity_zipf: 0.9,
            relation_zipf: 1.0,
            seed: 0x46524253, // "FRBS"
        }
    }
}

impl FreebaseConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            entities: 300,
            relation_types: 12,
            type_clusters: 4,
            edges: 900,
            ..Self::default()
        }
    }

    /// Scales entity and edge counts by `factor`.
    pub fn scaled(factor: f64) -> Self {
        let d = Self::default();
        Self {
            entities: ((d.entities as f64) * factor).max(50.0) as usize,
            edges: ((d.edges as f64) * factor).max(100.0) as usize,
            ..d
        }
    }
}

/// Generates a Freebase-like dataset.
pub fn freebase_like(cfg: &FreebaseConfig) -> Dataset {
    assert!(cfg.type_clusters >= 1, "need at least one type cluster");
    assert!(
        cfg.entities >= cfg.type_clusters,
        "need at least one entity per cluster"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut graph = KnowledgeGraph::new();

    // Entities, assigned round-robin to clusters so each cluster is a
    // contiguous arithmetic progression of ids.
    let entities: Vec<_> = (0..cfg.entities)
        .map(|i| graph.add_entity(&format!("m_{i}")))
        .collect();
    let cluster_of = |i: usize| i % cfg.type_clusters;
    let mut cluster_members: Vec<Vec<usize>> = vec![Vec::new(); cfg.type_clusters];
    for i in 0..cfg.entities {
        cluster_members[cluster_of(i)].push(i);
    }

    // Relations with (head-cluster, tail-cluster) signatures.
    let relations: Vec<_> = (0..cfg.relation_types)
        .map(|i| graph.add_relation(&format!("/domain_{}/rel_{i}", i % cfg.type_clusters)))
        .collect();
    let signatures: Vec<(usize, usize)> = (0..cfg.relation_types)
        .map(|_| {
            (
                rng.gen_range(0..cfg.type_clusters),
                rng.gen_range(0..cfg.type_clusters),
            )
        })
        .collect();

    let rel_zipf = Zipf::new(cfg.relation_types, cfg.relation_zipf);
    // One Zipf per cluster size class; cluster sizes differ by at most 1,
    // so a single sampler over the minimum size is fine with a re-draw.
    let cluster_zipfs: Vec<Zipf> = cluster_members
        .iter()
        .map(|m| Zipf::new(m.len().max(1), cfg.entity_zipf))
        .collect();

    let mut added = 0usize;
    let mut attempts = 0usize;
    let max_attempts = cfg.edges * 4;
    while added < cfg.edges && attempts < max_attempts {
        attempts += 1;
        let ri = rel_zipf.sample(&mut rng);
        let (hc, tc) = signatures[ri];
        let h = cluster_members[hc][cluster_zipfs[hc].sample(&mut rng)];
        let t = cluster_members[tc][cluster_zipfs[tc].sample(&mut rng)];
        if h == t {
            continue;
        }
        if graph
            .add_triple(entities[h], relations[ri], entities[t])
            // lint: allow(no-unwrap, both endpoints were just added to this graph by the generator)
            .expect("generated ids are valid")
        {
            added += 1;
        }
    }

    // Popularity = degree; filled in after all edges exist.
    let mut ds = Dataset {
        name: "freebase-like".to_owned(),
        graph,
        attributes: AttributeStore::new(),
    };
    ds.compute_popularity();
    // Also give each entity a synthetic "age"-like numeric for COUNT/SUM
    // experiments that need an attribute on arbitrary entities.
    for &e in &entities {
        let v = rng.gen_range(1.0f64..100.0).round();
        ds.attributes.set("age", e, v);
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EntityId;

    #[test]
    fn counts_match_config() {
        let cfg = FreebaseConfig::tiny();
        let ds = freebase_like(&cfg);
        assert_eq!(ds.graph.num_entities(), cfg.entities);
        assert_eq!(ds.graph.num_relations(), cfg.relation_types);
        // Edge target is met within the attempt budget for the tiny config.
        assert!(ds.graph.num_edges() > cfg.edges / 2);
    }

    #[test]
    fn many_relation_types_actually_used() {
        let ds = freebase_like(&FreebaseConfig::tiny());
        let mut used = std::collections::HashSet::new();
        for t in ds.graph.triples() {
            used.insert(t.relation);
        }
        assert!(used.len() >= 6, "only {} relation types used", used.len());
    }

    #[test]
    fn no_self_loops() {
        let ds = freebase_like(&FreebaseConfig::tiny());
        for t in ds.graph.triples() {
            assert_ne!(t.head, t.tail);
        }
    }

    #[test]
    fn popularity_and_age_attributes_present() {
        let ds = freebase_like(&FreebaseConfig::tiny());
        let e = EntityId(0);
        assert!(ds.attributes.get("popularity", e).unwrap().is_some());
        assert!(ds.attributes.get("age", e).unwrap().is_some());
    }

    #[test]
    fn degrees_follow_power_law_roughly() {
        let ds = freebase_like(&FreebaseConfig::default());
        let mut degrees: Vec<usize> = (0..ds.graph.num_entities() as u32)
            .map(|i| ds.graph.degree(EntityId(i)))
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // Top-1% of entities should hold a disproportionate share of edges.
        let top = degrees.len() / 100;
        let top_sum: usize = degrees[..top].iter().sum();
        let total: usize = degrees.iter().sum();
        assert!(
            top_sum as f64 > 0.05 * total as f64,
            "top 1% holds only {top_sum}/{total} of degree mass"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = freebase_like(&FreebaseConfig::tiny());
        let b = freebase_like(&FreebaseConfig::tiny());
        assert_eq!(a.graph.triples(), b.graph.triples());
    }
}
