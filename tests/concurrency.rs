//! Concurrency: the assembled engine is `Send`, read paths are shareable,
//! and a lock-guarded engine serves a multi-threaded query workload with
//! results identical to the serial run.
//!
//! The snapshot-readers-vs-one-writer scenario is defined **once**
//! ([`snapshot_readers_vs_writer_scenario`]) and exercised two ways: as
//! an ordinary multi-threaded test, and — under `--features model` —
//! through `vkg-sync`'s seeded model scheduler, which serializes the
//! same threads onto explored interleavings and checks for data races,
//! lock-order inversions, and deadlocks along the way.

use std::sync::Arc;

use vkg::prelude::*;
use vkg_sync::{thread as sync_thread, Mutex, RwLock};

fn build() -> (Dataset, VirtualKnowledgeGraph) {
    let ds = movie_like(&MovieConfig::tiny());
    let vkg = vkg::build_from_dataset(
        &ds,
        TransEConfig {
            dim: 16,
            epochs: 6,
            ..TransEConfig::default()
        },
        VkgConfig::default(),
    );
    (ds, vkg)
}

#[test]
fn engine_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<VirtualKnowledgeGraph>();
    assert_send::<KnowledgeGraph>();
    assert_send::<EmbeddingStore>();
    assert_send::<CrackingIndex>();
}

#[test]
fn concurrent_readers_on_graph_and_embeddings() {
    let (_ds, vkg) = build();
    let shared = Arc::new(RwLock::new(vkg));
    let mut handles = Vec::new();
    for t in 0..4 {
        let shared = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            let guard = shared.read();
            let mut checksum = 0usize;
            for i in (t * 10)..(t * 10 + 10) {
                let e = EntityId(i as u32);
                if let Some(name) = guard.graph().entity_name(e) {
                    checksum += name.len();
                    checksum += guard.embeddings().entity(e).len();
                }
            }
            checksum
        }));
    }
    for h in handles {
        assert!(h.join().unwrap() > 0);
    }
}

#[test]
fn parallel_queries_match_serial_results() {
    let (ds, vkg) = build();
    let likes = ds.graph.relation_id("likes").unwrap();
    let users: Vec<EntityId> = (0..12)
        .map(|u| ds.graph.entity_id(&format!("user_{u}")).unwrap())
        .collect();

    // Serial reference on an identical fresh engine.
    let (_, serial) = {
        let d = movie_like(&MovieConfig::tiny());
        let v = vkg::build_from_dataset(
            &d,
            TransEConfig {
                dim: 16,
                epochs: 6,
                ..TransEConfig::default()
            },
            VkgConfig::default(),
        );
        (d, v)
    };
    let mut serial_answers = Vec::new();
    for &u in &users {
        let r = serial.top_k(u, likes, Direction::Tails, 5).unwrap();
        serial_answers.push(r.predictions.iter().map(|p| p.id).collect::<Vec<_>>());
    }

    // Parallel run: queries mutate the index (cracking), so a Mutex
    // serializes the engine while threads interleave arbitrarily.
    let shared = Arc::new(Mutex::new(vkg));
    let mut handles = Vec::new();
    for (qi, &u) in users.iter().enumerate() {
        let shared = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            let guard = shared.lock();
            let r = guard.top_k(u, likes, Direction::Tails, 5).unwrap();
            (qi, r.predictions.iter().map(|p| p.id).collect::<Vec<_>>())
        }));
    }
    let mut parallel_answers = vec![Vec::new(); users.len()];
    for h in handles {
        let (qi, ids) = h.join().unwrap();
        parallel_answers[qi] = ids;
    }

    // Cracking order differs between runs, but answers are order-
    // independent (the index is lossless; only its shape differs).
    for (qi, (s, p)) in serial_answers.iter().zip(&parallel_answers).enumerate() {
        assert_eq!(s, p, "query {qi} diverged under concurrency");
    }
    shared.lock().index().check_invariants();
}

/// Snapshot isolation: readers holding `Arc<VkgSnapshot>` clones make
/// progress while the index write lock is held for the whole duration —
/// the read path never touches the engine lock.
#[test]
fn snapshot_readers_progress_while_writer_holds_index_lock() {
    let (ds, vkg) = build();
    let likes = ds.graph.relation_id("likes").unwrap();
    let snap = vkg.snapshot();

    // The "writer": grab the engine write lock and sit on it, as a
    // long-running crack would.
    let writer_guard = vkg.index_mut();

    let (tx, rx) = std::sync::mpsc::channel();
    let n_readers = 4;
    let mut handles = Vec::new();
    for t in 0..n_readers {
        let snap = Arc::clone(&snap);
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            let mut checksum = 0usize;
            for u in 0..6 {
                let user = snap.graph().entity_id(&format!("user_{u}")).unwrap();
                let q = snap.query_point_s1(user, likes, Direction::Tails).unwrap();
                checksum += q.len();
                checksum += snap.known_neighbors(user, likes, Direction::Tails).len();
                checksum += snap.project(&q).len();
            }
            tx.send((t, checksum)).unwrap();
        }));
    }

    // Readers must finish while the write lock is still held; a deadlock
    // (reads secretly routed through the engine lock) trips the timeout.
    for _ in 0..n_readers {
        let (_, checksum) = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("snapshot readers must progress while the index lock is held");
        assert!(checksum > 0);
    }
    drop(writer_guard);
    for h in handles {
        h.join().unwrap();
    }

    // With the lock released, writers crack and readers keep reading
    // concurrently through the same facade.
    let shared = Arc::new(vkg);
    let mut handles = Vec::new();
    for t in 0..4 {
        let shared = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            let user = shared.graph().entity_id(&format!("user_{t}")).unwrap();
            let r = shared.top_k(user, likes, Direction::Tails, 3).unwrap();
            assert!(r.predictions.len() <= 3);
        }));
    }
    let snap2 = shared.snapshot();
    for t in 0..4 {
        let snap2 = Arc::clone(&snap2);
        handles.push(std::thread::spawn(move || {
            let user = snap2.graph().entity_id(&format!("user_{t}")).unwrap();
            assert!(
                !snap2
                    .known_neighbors(user, likes, Direction::Tails)
                    .is_empty()
                    || snap2.graph().num_entities() > 0
            );
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    shared.index().check_invariants();
}

/// The one scenario definition shared by the direct test and the model
/// sweep: readers pin a snapshot and keep reading while one writer
/// publishes a dynamic update. Assertions cover snapshot freezing,
/// epoch monotonicity, and no torn visibility (a bumped epoch implies
/// the complete new snapshot, never half of it).
fn snapshot_readers_vs_writer_scenario(
    vkg: &Arc<VirtualKnowledgeGraph>,
    likes: RelationId,
    tag: &str,
) {
    let base_epoch = vkg.epoch();
    let snap = vkg.snapshot();
    let entities_before = snap.graph().num_entities();
    let dim = snap.embeddings().dim();

    let readers: Vec<_> = (0..2)
        .map(|t| {
            let vkg = Arc::clone(vkg);
            let snap = Arc::clone(&snap);
            sync_thread::spawn(move || {
                let user = snap.graph().entity_id(&format!("user_{t}")).unwrap();
                let q = snap.query_point_s1(user, likes, Direction::Tails).unwrap();
                assert!(!q.is_empty());
                // The pinned snapshot is frozen regardless of the writer.
                assert_eq!(snap.graph().num_entities(), entities_before);
                // Epoch monotonicity: successive reads never go back.
                let e1 = vkg.epoch();
                let (e2, s2) = vkg.published();
                assert!(e2 >= e1, "epoch went backwards: {e1} -> {e2}");
                assert!(e1 >= base_epoch);
                // No torn visibility: an advanced epoch carries the whole
                // update; an unchanged epoch carries none of it.
                if e2 > base_epoch {
                    assert_eq!(s2.graph().num_entities(), entities_before + 1);
                } else {
                    assert_eq!(s2.graph().num_entities(), entities_before);
                }
            })
        })
        .collect();
    let writer = {
        let vkg = Arc::clone(vkg);
        let name = format!("fresh_{tag}");
        sync_thread::spawn(move || {
            vkg.add_entity_dynamic(&name, &vec![30.0; dim])
                .expect("well-shaped dynamic entity");
        })
    };
    for h in readers {
        h.join().expect("reader");
    }
    writer.join().expect("writer");
    assert_eq!(vkg.epoch(), base_epoch + 1, "exactly one publication");
    assert_eq!(vkg.graph().num_entities(), entities_before + 1);
}

#[test]
fn snapshot_readers_vs_one_writer() {
    let (ds, vkg) = build();
    let likes = ds.graph.relation_id("likes").unwrap();
    let vkg = Arc::new(vkg);
    for round in 0..3 {
        snapshot_readers_vs_writer_scenario(&vkg, likes, &format!("round{round}"));
    }
}

/// The same scenario driven through the model scheduler: each seed is
/// one explored interleaving, checked for data races, lock-order
/// inversions, and deadlocks. The VKG is built once (TransE training
/// dominates the cost); the scenario is what the checker permutes.
#[cfg(feature = "model")]
#[test]
fn snapshot_readers_vs_one_writer_model() {
    let (ds, vkg) = build();
    let likes = ds.graph.relation_id("likes").unwrap();
    let vkg = Arc::new(vkg);
    for seed in 0..8 {
        let vkg2 = Arc::clone(&vkg);
        vkg_sync::model::check(seed, move || {
            snapshot_readers_vs_writer_scenario(&vkg2, likes, &format!("seed{seed}"));
        })
        .unwrap_or_else(|v| panic!("model run failed: {v}"));
    }
}

#[test]
fn index_stats_are_coherent_after_concurrent_load() {
    let (ds, vkg) = build();
    let likes = ds.graph.relation_id("likes").unwrap();
    let shared = Arc::new(Mutex::new(vkg));
    let mut handles = Vec::new();
    for t in 0..8 {
        let shared = Arc::clone(&shared);
        let ds_users = ds.graph.entity_id(&format!("user_{t}")).unwrap();
        handles.push(std::thread::spawn(move || {
            let guard = shared.lock();
            let _ = guard.top_k(ds_users, likes, Direction::Tails, 3).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let guard = shared.lock();
    let s = guard.index_stats();
    assert!(s.s1_distance_evals > 0);
    assert!(guard.index_node_count() >= 1);
    guard.index().check_invariants();
}

/// Shard independence: with the engine sharded by relation, holding one
/// shard's write lock stalls only that shard. Queries routed to a
/// different shard must keep answering while the lock is held — under a
/// single global engine lock they would deadlock against the timeout.
#[test]
fn queries_on_other_shards_progress_while_one_shard_lock_is_held() {
    let ds = movie_like(&MovieConfig::tiny());
    let vkg = vkg::build_from_dataset(
        &ds,
        TransEConfig {
            dim: 16,
            epochs: 6,
            ..TransEConfig::default()
        },
        VkgConfig {
            shards: 2,
            ..VkgConfig::default()
        },
    );
    // Find a relation the router does NOT place on shard 0 (the shard
    // `index_mut` pins); the tiny movie world has four relations, and
    // the Fibonacci hash never maps them all to one shard of two.
    let other = (0..ds.graph.num_relations() as u32)
        .map(RelationId)
        .find(|&r| shard_of_relation(r, 2) != 0)
        .expect("some relation lives on shard 1");
    let users: Vec<EntityId> = (0..6)
        .map(|u| ds.graph.entity_id(&format!("user_{u}")).unwrap())
        .collect();
    let vkg = Arc::new(vkg);

    // The "writer": sit on shard 0's write lock, as a long crack would.
    let shard0_guard = vkg.index_mut();

    let (tx, rx) = std::sync::mpsc::channel();
    let reader = {
        let vkg = Arc::clone(&vkg);
        let users = users.clone();
        std::thread::spawn(move || {
            for &u in &users {
                let r = vkg.top_k(u, other, Direction::Tails, 3).unwrap();
                assert!(r.predictions.len() <= 3);
            }
            tx.send(()).unwrap();
        })
    };
    rx.recv_timeout(std::time::Duration::from_secs(10))
        .expect("other-shard queries must progress while shard 0 is locked");
    drop(shard0_guard);
    reader.join().unwrap();
    vkg.index().check_invariants();
}
