//! Fixed-size lock-free span ring with exact dropped-span accounting.
//!
//! Writers never block and never allocate: a push claims a ticket from
//! an atomic head counter, maps it to a slot, and runs a per-slot
//! seqlock protocol. Readers ([`SpanRing::collect`]) validate each
//! slot's sequence before and after copying its words, so a snapshot
//! never contains a torn span — the vkg-sync model checker sweeps this
//! claim across ≥64 adversarial schedules in `tests/model.rs`.
//!
//! ## Slot protocol
//!
//! Each slot holds a sequence number and [`SPAN_WORDS`] atomic words.
//! `seq == 0` means empty, odd means a writer is mid-write, even `≥ 2`
//! means the slot holds a stable span.
//!
//! * **push**: CAS `seq` from the observed even value `s` to `s + 1`
//!   (claiming the slot), store the words, publish `seq = s + 2`. If
//!   the CAS fails or `s` was odd, another writer owns the slot and the
//!   *new* span is dropped. If `s ≥ 2`, the slot held a stable span
//!   that is now overwritten — the *old* span is dropped.
//! * **read**: load `seq` (acquire), skip if empty or odd, copy the
//!   words (acquire), re-load `seq`, accept only if unchanged. Word
//!   loads are acquire and word stores release so that observing any
//!   word of generation *g* forces the second `seq` load to observe at
//!   least generation *g*'s claim — a changed or odd `seq` rejects the
//!   copy.
//!
//! Every push therefore either adds one live span or drops exactly one
//! span (its own on a claim failure, the overwritten predecessor
//! otherwise), giving the exact accounting invariant
//! `recorded() == live spans + dropped()` at quiescence.

use vkg_sync::{AtomicU64, Ordering};

use crate::span::{Span, SPAN_WORDS};

struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; SPAN_WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            words: Default::default(),
        }
    }
}

/// A bounded multi-writer span buffer keeping the most recent spans.
pub struct SpanRing {
    slots: Vec<Slot>,
    head: AtomicU64,
    dropped: AtomicU64,
}

impl SpanRing {
    /// A ring holding at most `capacity` spans (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        SpanRing {
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum number of spans retained.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever pushed (including dropped ones).
    pub fn recorded(&self) -> u64 {
        // relaxed: pure statistic; no reader infers other state from it.
        self.head.load(Ordering::Relaxed)
    }

    /// Spans lost so far: pushes that lost a slot claim plus stable
    /// spans overwritten by newer ones. At quiescence,
    /// `recorded() == dropped() + (live spans in the ring)` exactly.
    pub fn dropped(&self) -> u64 {
        // relaxed: pure statistic; no reader infers other state from it.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records `span`, dropping it (and returning `false`) if another
    /// writer owns the target slot. Never blocks, never allocates.
    pub fn push(&self, span: &Span) -> bool {
        // relaxed: a ticket dispenser; slot assignment needs uniqueness,
        // not ordering — the seqlock below provides the publication.
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq & 1 == 1 {
            // relaxed: pure statistic (see `dropped`).
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // A lost race drops the span, reading nothing the winner wrote.
        // relaxed: failure ordering only; success orders via Acquire.
        if slot
            .seq
            .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // relaxed: pure statistic (see `dropped`).
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if seq >= 2 {
            // The slot held a stable span; this push overwrites it.
            // relaxed: pure statistic (see `dropped`).
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        for (cell, word) in slot.words.iter().zip(span.to_words()) {
            // Release so a reader that observes this generation's word
            // is forced to also observe the odd claim on `seq`.
            cell.store(word, Ordering::Release);
        }
        slot.seq.store(seq + 2, Ordering::Release);
        true
    }

    /// Copies out every stable span, ordered oldest-to-newest by span
    /// id, keeping at most the newest `last_n`. Slots being written
    /// concurrently are skipped (their spans count as not-yet-stable),
    /// never returned torn.
    pub fn collect(&self, last_n: usize) -> Vec<Span> {
        let mut out = Vec::new();
        for slot in &self.slots {
            // Bounded revalidation: a slot rewritten while we copy gets
            // a couple of fresh attempts, then is skipped — a snapshot
            // must not spin behind a hot writer.
            for _ in 0..3 {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 || s1 & 1 == 1 {
                    break;
                }
                let mut words = [0u64; SPAN_WORDS];
                for (word, cell) in words.iter_mut().zip(slot.words.iter()) {
                    // Acquire pairs with the writer's release stores
                    // (see the module docs' torn-read argument).
                    *word = cell.load(Ordering::Acquire);
                }
                if slot.seq.load(Ordering::Acquire) == s1 {
                    out.push(Span::from_words(&words));
                    break;
                }
            }
        }
        out.sort_by_key(|s| s.id);
        if out.len() > last_n {
            out.drain(..out.len() - last_n);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64) -> Span {
        Span {
            id,
            op: 1,
            shard: 0,
            queue_ns: id * 10,
            exec_ns: id * 100,
            ..Span::default()
        }
    }

    #[test]
    fn keeps_the_newest_spans() {
        let ring = SpanRing::new(4);
        for id in 0..10 {
            assert!(ring.push(&span(id)));
        }
        let got = ring.collect(4);
        let ids: Vec<u64> = got.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
        assert_eq!(ring.recorded(), 10);
        // 10 pushed, 4 live → exactly 6 dropped by overwrite.
        assert_eq!(ring.dropped(), 6);
    }

    #[test]
    fn collect_respects_last_n() {
        let ring = SpanRing::new(8);
        for id in 0..5 {
            ring.push(&span(id));
        }
        assert_eq!(ring.collect(2).len(), 2);
        assert_eq!(ring.collect(2)[0].id, 3);
        assert_eq!(ring.collect(100).len(), 5);
    }

    #[test]
    fn accounting_balances_single_threaded() {
        let ring = SpanRing::new(3);
        for id in 0..3 {
            ring.push(&span(id));
        }
        assert_eq!(ring.dropped(), 0);
        for id in 3..8 {
            ring.push(&span(id));
        }
        let live = ring.collect(usize::MAX).len() as u64;
        assert_eq!(ring.recorded(), live + ring.dropped());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = SpanRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(&span(1));
        assert_eq!(ring.collect(8).len(), 1);
    }

    #[test]
    fn concurrent_pushes_never_tear_and_balance() {
        let ring = std::sync::Arc::new(SpanRing::new(4));
        let writers = 4;
        let per = 64;
        std::thread::scope(|s| {
            for w in 0..writers {
                let ring = ring.clone();
                s.spawn(move || {
                    for i in 0..per {
                        let id = (w * per + i) as u64;
                        // Fields derive from id so a torn span is
                        // detectable below.
                        let sp = Span {
                            id,
                            queue_ns: id * 3,
                            exec_ns: id * 7,
                            refine_steps: id,
                            ..Span::default()
                        };
                        ring.push(&sp);
                    }
                });
            }
        });
        let live = ring.collect(usize::MAX);
        for s in &live {
            assert_eq!(s.queue_ns, s.id * 3, "torn span: {s:?}");
            assert_eq!(s.exec_ns, s.id * 7, "torn span: {s:?}");
            assert_eq!(s.refine_steps, s.id, "torn span: {s:?}");
        }
        assert_eq!(ring.recorded(), (writers * per) as u64);
        assert_eq!(ring.recorded(), live.len() as u64 + ring.dropped());
    }
}
