//! `vkg-server` — a hand-rolled TCP query-serving subsystem for the
//! virtual knowledge graph, built on `std::net` only.
//!
//! Layers, bottom-up:
//!
//! * [`wire`] — length-prefixed framing (`u32` LE length + payload),
//!   incremental [`wire::FrameBuffer`] reassembly, and the `Enc`/`Dec`
//!   primitives. Decoding fails closed: truncated prefixes, oversized
//!   frames, and trailing bytes are typed [`wire::WireError`]s, never
//!   panics.
//! * [`protocol`] — the versioned message set: `TopK`, `TopKFiltered`,
//!   `Aggregate`, `AddFactDynamic`, `Stats`, `Shutdown` requests and
//!   their typed responses, including the [`protocol::ErrorCode`]
//!   vocabulary for admission-control refusals (`Overloaded`,
//!   `DeadlineExceeded`, `Draining`).
//! * [`queue`] — the bounded admission queue ([`queue::JobQueue`]) and
//!   the monotonic [`queue::Counters`], built on `vkg-sync` primitives
//!   so the model-checking tests explore their interleavings directly.
//! * [`server`] — accept loop + per-connection threads + a bounded
//!   admission queue feeding a fixed worker pool. A full queue sheds
//!   load explicitly; admitted work is always answered (the
//!   `admitted == answered` invariant); well-formed requests are
//!   sanitized before admission (`k` clamped to the entity count and
//!   frame budget, write refinement capped at
//!   [`server::MAX_REFINE_STEPS`], non-finite learning rates refused);
//!   and reads pin one snapshot epoch end-to-end via the facade's
//!   epoch-swap publication.
//! * [`client`] — a synchronous [`client::Client`] speaking the same
//!   protocol, used by the test suite and `vkg-bench`'s `serve_load`
//!   load generator. With a [`client::RetryPolicy`] installed it
//!   self-heals: bounded exponential backoff with deterministic jitter
//!   on `Overloaded`/`Draining`, transparent reconnect on connection
//!   loss, and idempotent write tokens
//!   ([`client::Client::add_fact_idempotent`]) so a retried write
//!   applies at most once even across a server crash + WAL recovery.
//!
//! The server is **observable end-to-end**: every admitted request is
//! traced into a `vkg-obs` span (queue wait → shard lock → execute →
//! encode), admission counters and a server-side latency histogram live
//! in a per-server metrics registry, and the `Metrics` opcode exports
//! all of it (merged with the engine facade's `core.*` registry) over
//! the wire — see [`server::names`] and [`protocol::MetricsWire`].
//!
//! ```no_run
//! use std::sync::Arc;
//! use vkg_server::{Client, Server, ServerConfig};
//! # fn vkg() -> vkg_core::vkg::VirtualKnowledgeGraph { unimplemented!() }
//!
//! let handle = Server::start(Arc::new(vkg()), "127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(handle.addr())?;
//! let top = client.top_k(vkg_kg::EntityId(0), vkg_kg::RelationId(0), vkg_core::Direction::Tails, 5)?;
//! println!("epoch {}: {} predictions", top.epoch, top.predictions.len());
//! client.shutdown()?;
//! handle.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, ClientResult, RetryPolicy, RetryStats};
pub use protocol::{
    AggregateWire, ErrorCode, MetricsWire, PredictionWire, Request, RequestOp, Response,
    ServerCounters, ServerError, StatsWire, TopKWire, WireFilter,
};
pub use server::{Server, ServerConfig, ServerHandle, MAX_REFINE_STEPS};
pub use wire::{WireError, MAX_FRAME, WIRE_VERSION};
