// pretend: crates/server/src/server.rs
// Fixture for the no-unwrap rule: panicking calls in the panic-free
// zone must fire; annotated and #[cfg(test)] uses must not.

fn bare_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // expect: no-unwrap
}

fn bare_expect(x: Result<u32, ()>) -> u32 {
    x.expect("boom") // expect: no-unwrap
}

fn bare_panic() {
    panic!("nope") // expect: no-unwrap
}

fn bare_unreachable() {
    unreachable!() // expect: no-unwrap
}

fn suppressed(x: Option<u32>) -> u32 {
    // lint: allow(no-unwrap, the caller checked is_some on the previous line)
    x.unwrap()
}

// lint: allow(no-unwrap) expect: malformed-allow
fn allow_without_reason(x: Option<u32>) -> u32 {
    x.unwrap() // expect: no-unwrap
}

fn string_and_comment_immunity() -> &'static str {
    // a comment saying panic!("x") never fires
    "neither does .unwrap() in a string"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        Some(1).unwrap();
        panic!("fine in tests");
    }
}
