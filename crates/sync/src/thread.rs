//! Thread spawning through the facade.
//!
//! Passthrough mode re-exports `std::thread`'s pieces. In model mode,
//! a spawn performed on a *managed* thread creates another managed
//! thread: a real OS thread that parks on the runtime's turnstile and
//! runs only when the seeded scheduler says so. Spawns on unmanaged
//! threads (a server accept loop in an ordinary integration test, say)
//! fall through to `std::thread` untouched.

#[cfg(not(feature = "model"))]
pub use std::thread::{sleep, yield_now, Builder, JoinHandle, Scope, ScopedJoinHandle};

#[cfg(not(feature = "model"))]
/// Spawns an OS thread (passthrough to [`std::thread::spawn`]).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    std::thread::spawn(f)
}

#[cfg(not(feature = "model"))]
/// Scoped threads (passthrough to [`std::thread::scope`]): spawned
/// threads may borrow from the caller's stack and are all joined
/// before `scope` returns.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    std::thread::scope(f)
}

#[cfg(feature = "model")]
pub use model_impl::{
    scope, sleep, spawn, yield_now, Builder, JoinHandle, Scope, ScopedJoinHandle,
};

#[cfg(feature = "model")]
mod model_impl {
    use std::panic::{self, AssertUnwindSafe};
    use std::sync::{Arc, Mutex, PoisonError};
    use std::time::Duration;

    use crate::model::runtime::{current, set_current, ModelAbort, Runtime};

    type ResultSlot<T> = Arc<Mutex<Option<std::thread::Result<T>>>>;

    /// Handle to a spawned thread; mirrors [`std::thread::JoinHandle`].
    #[derive(Debug)]
    pub struct JoinHandle<T>(Inner<T>);

    #[derive(Debug)]
    enum Inner<T> {
        /// Spawned outside any model run: a plain std handle.
        Unmanaged(std::thread::JoinHandle<T>),
        /// Spawned inside a model run: joined through the scheduler.
        Managed {
            rt: Arc<Runtime>,
            tid: usize,
            /// The underlying OS thread (exits right after the child
            /// reports itself finished).
            os: std::thread::JoinHandle<()>,
            slot: ResultSlot<T>,
        },
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish, returning its result (or
        /// the panic payload, like std).
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Inner::Unmanaged(h) => h.join(),
                Inner::Managed { rt, tid, os, slot } => {
                    if let Some((rt2, me)) = current() {
                        debug_assert!(Arc::ptr_eq(&rt, &rt2), "join across model runs");
                        rt2.join_thread(me, tid);
                    }
                    // The model join already ordered us after the
                    // child's completion; the OS join is instant.
                    let _ = os.join();
                    slot.lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take()
                        .expect("managed thread stored its result before finishing")
                }
            }
        }

        /// Whether the thread has finished running.
        pub fn is_finished(&self) -> bool {
            match &self.0 {
                Inner::Unmanaged(h) => h.is_finished(),
                Inner::Managed { rt, tid, .. } => rt.is_thread_finished(*tid),
            }
        }
    }

    /// Mirrors [`std::thread::Builder`] (name only).
    #[derive(Debug, Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// Creates a builder with no name set.
        pub fn new() -> Self {
            Self::default()
        }

        /// Names the thread — visible in model violation reports and
        /// on the OS thread.
        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        /// Spawns the thread, propagating OS spawn failure.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            match current() {
                None => {
                    let mut b = std::thread::Builder::new();
                    if let Some(n) = &self.name {
                        b = b.name(n.clone());
                    }
                    Ok(JoinHandle(Inner::Unmanaged(b.spawn(f)?)))
                }
                Some((rt, me)) => spawn_managed(rt, me, self.name, f),
            }
        }
    }

    fn spawn_managed<F, T>(
        rt: Arc<Runtime>,
        me: usize,
        name: Option<String>,
        f: F,
    ) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let tid = rt.register_child(me, name.clone());
        let slot: ResultSlot<T> = Arc::new(Mutex::new(None));
        let slot2 = slot.clone();
        let rt2 = rt.clone();
        let mut b = std::thread::Builder::new();
        if let Some(n) = name {
            b = b.name(n);
        }
        let os = b.spawn(move || {
            set_current(Some((rt2.clone(), tid)));
            rt2.block_until_scheduled(tid);
            let result = panic::catch_unwind(AssertUnwindSafe(f));
            match result {
                Ok(v) => {
                    *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(Ok(v));
                }
                Err(p) => {
                    if !p.is::<ModelAbort>() {
                        let msg = if let Some(s) = p.downcast_ref::<&str>() {
                            (*s).to_string()
                        } else if let Some(s) = p.downcast_ref::<String>() {
                            s.clone()
                        } else {
                            "<non-string panic payload>".to_string()
                        };
                        rt2.flag_thread_panic(tid, msg);
                    }
                    *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(Err(p));
                }
            }
            rt2.thread_finished(tid);
            set_current(None);
        })?;
        // The child physically exists now; the spawn's scheduling
        // point may hand it the processor straight away.
        rt.yield_point(me);
        Ok(JoinHandle(Inner::Managed { rt, tid, os, slot }))
    }

    /// Spawns a thread; managed if called from inside a model run.
    ///
    /// # Panics
    /// Like [`std::thread::spawn`], panics if the OS refuses to spawn.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("failed to spawn thread")
    }

    /// Bookkeeping a managed scope carries: which runtime owns the
    /// enclosing model run and which children still need a scheduler
    /// join before the std scope's implicit OS join may run.
    #[derive(Debug)]
    struct ScopeRt {
        rt: Arc<Runtime>,
        me: usize,
        pending: Arc<Mutex<Vec<usize>>>,
    }

    /// Scoped-spawn environment; mirrors [`std::thread::Scope`].
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        managed: Option<ScopeRt>,
    }

    /// Handle to a scoped thread; mirrors [`std::thread::ScopedJoinHandle`].
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T>(ScopedInner<'scope, T>);

    #[derive(Debug)]
    enum ScopedInner<'scope, T> {
        /// Scope created outside any model run: a plain std handle.
        Unmanaged(std::thread::ScopedJoinHandle<'scope, T>),
        /// Scope created inside a model run: joined through the
        /// scheduler first, exactly like a managed [`JoinHandle`].
        Managed {
            rt: Arc<Runtime>,
            tid: usize,
            os: std::thread::ScopedJoinHandle<'scope, ()>,
            slot: ResultSlot<T>,
            /// Shared with the owning scope so an explicit join takes
            /// this child off the scope-exit join list.
            pending: Arc<Mutex<Vec<usize>>>,
        },
    }

    impl<'scope> Scope<'scope, '_> {
        /// Spawns a scoped thread; managed if the scope itself was
        /// opened on a managed thread.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let Some(m) = &self.managed else {
                return ScopedJoinHandle(ScopedInner::Unmanaged(self.inner.spawn(f)));
            };
            let tid = m.rt.register_child(m.me, None);
            let slot: ResultSlot<T> = Arc::new(Mutex::new(None));
            let slot2 = slot.clone();
            let rt2 = m.rt.clone();
            let os = self.inner.spawn(move || {
                set_current(Some((rt2.clone(), tid)));
                rt2.block_until_scheduled(tid);
                let result = panic::catch_unwind(AssertUnwindSafe(f));
                match result {
                    Ok(v) => {
                        *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(Ok(v));
                    }
                    Err(p) => {
                        if !p.is::<ModelAbort>() {
                            let msg = if let Some(s) = p.downcast_ref::<&str>() {
                                (*s).to_string()
                            } else if let Some(s) = p.downcast_ref::<String>() {
                                s.clone()
                            } else {
                                "<non-string panic payload>".to_string()
                            };
                            rt2.flag_thread_panic(tid, msg);
                        }
                        *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(Err(p));
                    }
                }
                rt2.thread_finished(tid);
                set_current(None);
            });
            // Record the child before the yield point: should the
            // yield abort the run, scope teardown must know about it.
            m.pending
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(tid);
            m.rt.yield_point(m.me);
            ScopedJoinHandle(ScopedInner::Managed {
                rt: m.rt.clone(),
                tid,
                os,
                slot,
                pending: m.pending.clone(),
            })
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the scoped thread to finish, returning its result
        /// (or the panic payload, like std).
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                ScopedInner::Unmanaged(h) => h.join(),
                ScopedInner::Managed {
                    rt,
                    tid,
                    os,
                    slot,
                    pending,
                } => {
                    // An explicit join owns this child's release; the
                    // scope exit must not scheduler-join it again.
                    pending
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .retain(|&t| t != tid);
                    if let Some((rt2, me)) = current() {
                        debug_assert!(Arc::ptr_eq(&rt, &rt2), "join across model runs");
                        rt2.join_thread(me, tid);
                    }
                    let _ = os.join();
                    slot.lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take()
                        .expect("managed scoped thread stored its result before finishing")
                }
            }
        }

        /// Whether the scoped thread has finished running.
        pub fn is_finished(&self) -> bool {
            match &self.0 {
                ScopedInner::Unmanaged(h) => h.is_finished(),
                ScopedInner::Managed { rt, tid, .. } => rt.is_thread_finished(*tid),
            }
        }
    }

    /// Scoped threads; mirrors [`std::thread::scope`].
    ///
    /// On a managed thread the scope joins every still-pending child
    /// *through the scheduler* before letting the underlying
    /// [`std::thread::scope`] perform its implicit OS joins — without
    /// that release step the OS join would block while the scheduler
    /// still considers this thread runnable, deadlocking the run.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        std::thread::scope(|inner| {
            let managed = current().map(|(rt, me)| ScopeRt {
                rt,
                me,
                pending: Arc::new(Mutex::new(Vec::new())),
            });
            let s = Scope { inner, managed };
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
            if let Some(m) = &s.managed {
                let pending =
                    std::mem::take(&mut *m.pending.lock().unwrap_or_else(PoisonError::into_inner));
                // On a scheduler abort the runtime is already waking
                // every thread with `ModelAbort`; touching it again
                // from here is both pointless and unsafe.
                let aborting = matches!(&result, Err(p) if p.is::<ModelAbort>());
                if !aborting {
                    for tid in pending {
                        m.rt.join_thread(m.me, tid);
                    }
                }
            }
            match result {
                Ok(v) => v,
                Err(p) => panic::resume_unwind(p),
            }
        })
    }

    /// A scheduling point in model runs; [`std::thread::yield_now`]
    /// otherwise.
    pub fn yield_now() {
        if let Some((rt, me)) = current() {
            rt.yield_point(me);
        } else {
            std::thread::yield_now();
        }
    }

    /// Model time is abstract: on a managed thread a sleep is just a
    /// scheduling point. Unmanaged threads really sleep.
    pub fn sleep(dur: Duration) {
        if let Some((rt, me)) = current() {
            rt.yield_point(me);
        } else {
            std::thread::sleep(dur);
        }
    }
}
