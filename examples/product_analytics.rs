//! Predictive product analytics over the Amazon-like dataset: aggregate
//! queries on the *virtual* edges (the paper's §VI aggregate experiments,
//! Figures 12–16 in miniature).
//!
//! For a user, estimates over the products they *would* like (but have
//! not rated): the expected COUNT, the AVG product quality, and the MAX
//! quality — sweeping the sample size `a` to show the time/accuracy
//! trade-off, with Theorem 4 confidence intervals.
//!
//! Run with: `cargo run --release --example product_analytics`

use std::time::Instant;

use vkg::prelude::*;

fn main() {
    let cfg = AmazonConfig {
        users: 600,
        products: 1_200,
        ratings_per_user: 20,
        ..AmazonConfig::default()
    };
    let ds = amazon_like(&cfg);
    println!("dataset: {} — {}", ds.name, ds.graph.stats());

    let embeddings = vkg::embed::least_squares_embedding(
        &ds.graph,
        &vkg::embed::LsConfig {
            dim: 32,
            ..Default::default()
        },
    );

    let vkg = VirtualKnowledgeGraph::assemble(
        ds.graph.clone(),
        ds.attributes.clone(),
        embeddings,
        VkgConfig {
            epsilon: 1.0,
            ..VkgConfig::default()
        },
    );

    let likes = vkg.graph().relation_id("likes").unwrap();
    let user = vkg.graph().entity_id("user_7").unwrap();

    // --- COUNT: how many products would this user like? ---------------
    let count = vkg
        .aggregate(user, likes, Direction::Tails, &AggregateSpec::count(0.05))
        .expect("valid query");
    println!(
        "\nexpected number of products user_7 would like (p ≥ 0.05): {:.1}  (ball: {} products)",
        count.estimate, count.ball_size
    );

    // --- AVG quality with a sample-size sweep (Fig. 14's tradeoff) -----
    println!("\nAVG product quality of user_7's predicted likes, sweeping sample size a:");
    println!(
        "  {:>6} {:>12} {:>10} {:>22}",
        "a", "time", "estimate", "90%-conf rel. error"
    );
    let full = vkg
        .aggregate(
            user,
            likes,
            Direction::Tails,
            &AggregateSpec::of(AggregateKind::Avg, "quality", 0.05),
        )
        .expect("valid query");
    for a in [2usize, 5, 10, 25, 50, full.ball_size.max(1)] {
        let spec = AggregateSpec::of(AggregateKind::Avg, "quality", 0.05).with_sample(a);
        let t = Instant::now();
        let r = vkg
            .aggregate(user, likes, Direction::Tails, &spec)
            .expect("valid query");
        println!(
            "  {:>6} {:>12.1?} {:>10.3} {:>21.1}%",
            r.accessed,
            t.elapsed(),
            r.estimate,
            100.0 * r.bound.delta_for_confidence(0.9)
        );
    }
    println!(
        "  full-access reference estimate: {:.3} over {} ball members",
        full.estimate, full.ball_size
    );

    // --- MAX quality (Fig. 15's estimator, Eq. 4) ----------------------
    let max = vkg
        .aggregate(
            user,
            likes,
            Direction::Tails,
            &AggregateSpec::of(AggregateKind::Max, "quality", 0.05).with_sample(10),
        )
        .expect("valid query");
    println!(
        "\nexpected MAX quality among predicted likes (from a 10-sample): {:.3}",
        max.estimate
    );

    // --- MIN quality ----------------------------------------------------
    let min = vkg
        .aggregate(
            user,
            likes,
            Direction::Tails,
            &AggregateSpec::of(AggregateKind::Min, "quality", 0.05).with_sample(10),
        )
        .expect("valid query");
    println!(
        "expected MIN quality among predicted likes: {:.3}",
        min.estimate
    );

    let s = vkg.index_stats();
    println!(
        "\nindex after the analytics session: {} nodes, {} splits, {} S₁ distance evals",
        vkg.index_node_count(),
        s.splits_performed,
        s.s1_distance_evals
    );
}
