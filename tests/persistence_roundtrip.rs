//! Persistence: a graph and its (externally trainable) embeddings survive
//! a full export → import cycle and the re-assembled engine answers
//! identically — the paper's "import precomputed embeddings" path.

use vkg::embed::io as embed_io;
use vkg::kg::io as kg_io;
use vkg::prelude::*;

fn world() -> (Dataset, EmbeddingStore) {
    let ds = movie_like(&MovieConfig::tiny());
    let (store, _) = TransE::new(TransEConfig {
        dim: 16,
        epochs: 6,
        ..TransEConfig::default()
    })
    .train(&ds.graph);
    (ds, store)
}

#[test]
fn graph_tsv_roundtrip_preserves_queries() {
    // The triple TSV format (like the FB15k-style dumps it mirrors) only
    // carries entities that appear in at least one triple, so first
    // canonicalize the generated graph through one roundtrip; the
    // canonical form must then roundtrip losslessly and id-stably.
    let (ds, _) = world();
    let mut buf = Vec::new();
    kg_io::write_tsv(&ds.graph, &mut buf).unwrap();
    let canonical = kg_io::read_tsv(buf.as_slice()).unwrap();
    assert!(canonical.num_entities() <= ds.graph.num_entities());
    assert_eq!(canonical.num_edges(), ds.graph.num_edges());

    let mut buf2 = Vec::new();
    kg_io::write_tsv(&canonical, &mut buf2).unwrap();
    let graph2 = kg_io::read_tsv(buf2.as_slice()).unwrap();
    assert_eq!(graph2.num_entities(), canonical.num_entities());
    assert_eq!(graph2.num_edges(), canonical.num_edges());

    // Ids are assigned in first-occurrence order on both sides and
    // write_tsv emits triples in insertion order — names must map to the
    // same ids, so externally trained embedding rows keep lining up.
    for i in 0..canonical.num_entities() as u32 {
        let name = canonical.entity_name(EntityId(i)).unwrap();
        assert_eq!(
            graph2.entity_id(name),
            Some(EntityId(i)),
            "entity id drift for {name}"
        );
    }

    // Train on the canonical graph; both copies must answer identically.
    let (store, _) = TransE::new(TransEConfig {
        dim: 16,
        epochs: 6,
        ..TransEConfig::default()
    })
    .train(&canonical);
    let a = VirtualKnowledgeGraph::assemble(
        canonical.clone(),
        AttributeStore::new(),
        store.clone(),
        VkgConfig::default(),
    );
    let b =
        VirtualKnowledgeGraph::assemble(graph2, AttributeStore::new(), store, VkgConfig::default());
    let likes = canonical.relation_id("likes").unwrap();
    let mut asked = 0;
    for u in 0..10 {
        let Some(user) = canonical.entity_id(&format!("user_{u}")) else {
            continue;
        };
        asked += 1;
        let ra = a.top_k(user, likes, Direction::Tails, 5).unwrap();
        let rb = b.top_k(user, likes, Direction::Tails, 5).unwrap();
        assert_eq!(
            ra.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
            rb.predictions.iter().map(|p| p.id).collect::<Vec<_>>()
        );
    }
    assert!(asked >= 3, "too few users survived canonicalization");
}

#[test]
fn embedding_tsv_roundtrip_preserves_answers() {
    let (ds, store) = world();

    let mut buf = Vec::new();
    embed_io::write_tsv(&store, &mut buf).unwrap();
    let store2 = embed_io::read_tsv(buf.as_slice()).unwrap();
    assert_eq!(store2.dim(), store.dim());

    let a = VirtualKnowledgeGraph::assemble(
        ds.graph.clone(),
        ds.attributes.clone(),
        store,
        VkgConfig::default(),
    );
    let b = VirtualKnowledgeGraph::assemble(
        ds.graph.clone(),
        ds.attributes.clone(),
        store2,
        VkgConfig::default(),
    );
    let likes = ds.graph.relation_id("likes").unwrap();
    let user = ds.graph.entity_id("user_4").unwrap();
    let ra = a.top_k(user, likes, Direction::Tails, 5).unwrap();
    let rb = b.top_k(user, likes, Direction::Tails, 5).unwrap();
    assert_eq!(
        ra.predictions.iter().map(|p| p.id).collect::<Vec<_>>(),
        rb.predictions.iter().map(|p| p.id).collect::<Vec<_>>()
    );
}

#[test]
fn embedding_binary_roundtrip_is_bit_exact() {
    let (_ds, store) = world();
    let bytes = embed_io::to_binary(&store);
    let store2 = embed_io::from_binary(&bytes).unwrap();
    assert_eq!(store, store2, "binary format must be lossless");
}

#[test]
fn binary_format_is_compact() {
    let (_ds, store) = world();
    let bytes = embed_io::to_binary(&store);
    let expected = 17 + 8 * (store.entity_matrix().len() + store.relation_matrix().len());
    assert_eq!(bytes.len(), expected, "17-byte header + raw f64 payload");

    let mut tsv = Vec::new();
    embed_io::write_tsv(&store, &mut tsv).unwrap();
    assert!(
        bytes.len() < tsv.len(),
        "binary ({}) should undercut TSV ({})",
        bytes.len(),
        tsv.len()
    );
}

#[test]
fn masked_graph_roundtrip() {
    // Mask-edges workflow survives persistence: remove edges, export,
    // import, and confirm the masked facts are absent while queries work.
    let (mut ds, _) = world();
    let t = ds.graph.triples()[0];
    assert!(ds.graph.remove_triple(t.head, t.relation, t.tail));

    let mut buf = Vec::new();
    kg_io::write_tsv(&ds.graph, &mut buf).unwrap();
    let graph2 = kg_io::read_tsv(buf.as_slice()).unwrap();
    // Entity interning order may differ after removal, so compare by name.
    let h = graph2
        .entity_id(ds.graph.entity_name(t.head).unwrap())
        .unwrap();
    let r = graph2
        .relation_id(ds.graph.relation_name(t.relation).unwrap())
        .unwrap();
    let tl = graph2
        .entity_id(ds.graph.entity_name(t.tail).unwrap())
        .unwrap();
    assert!(!graph2.has_edge(h, r, tl));
    assert_eq!(graph2.num_edges(), ds.graph.num_edges());
}
