//! Flat storage of S₂ points.
//!
//! One point per entity, id-aligned with the knowledge graph's dense
//! entity ids. Struct-of-arrays layout: all coordinates in one `Vec<f64>`
//! with stride `dim`, which keeps sort-order construction and MBR sweeps
//! cache-friendly (see the workspace performance notes in DESIGN.md §3).

use super::mbr::{Mbr, MAX_DIM};
use crate::error::{VkgError, VkgResult};

/// An immutable set of `α`-dimensional points, indexed by dense `u32` ids.
///
/// Alongside the coordinates the set stores each point's squared norm
/// `|p|²`, maintained on every mutation, so the blocked distance
/// kernels (see [`crate::geometry::kernels`]) can use the
/// `|p|² − 2p·q + |q|²` decomposition without a per-query norm pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSet {
    dim: usize,
    coords: Vec<f64>,
    norms_sq: Vec<f64>,
}

/// `|p|²` with the exact summation order the contour sweeps always
/// used (`p.iter().map(|c| c * c).sum()`), so stored norms are
/// bit-identical to values computed on the fly.
#[inline]
fn row_norm_sq(p: &[f64]) -> f64 {
    p.iter().map(|c| c * c).sum()
}

impl PointSet {
    /// Wraps a row-major `n × dim` coordinate matrix.
    ///
    /// # Panics
    /// Panics if `dim` is zero or exceeds [`MAX_DIM`], or if the matrix
    /// length is not a multiple of `dim`.
    pub fn from_rows(dim: usize, coords: Vec<f64>) -> Self {
        assert!(dim > 0, "point dimensionality must be positive");
        assert!(
            dim <= MAX_DIM,
            "index space dimensionality {dim} exceeds MAX_DIM={MAX_DIM}"
        );
        assert_eq!(coords.len() % dim, 0, "coordinate matrix shape mismatch");
        let norms_sq = coords.chunks_exact(dim).map(row_norm_sq).collect();
        Self {
            dim,
            coords,
            norms_sq,
        }
    }

    /// Dimensionality `α`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// The coordinates of point `id`.
    #[inline]
    pub fn point(&self, id: u32) -> &[f64] {
        let i = id as usize * self.dim;
        &self.coords[i..i + self.dim]
    }

    /// One coordinate of point `id`.
    #[inline]
    pub fn coord(&self, id: u32, axis: usize) -> f64 {
        debug_assert!(axis < self.dim);
        self.coords[id as usize * self.dim + axis]
    }

    /// The precomputed squared norm `|p|²` of point `id`.
    #[inline]
    pub fn norm_sq(&self, id: u32) -> f64 {
        self.norms_sq[id as usize]
    }

    /// The whole row-major coordinate matrix (stride [`PointSet::dim`]).
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// All precomputed squared norms, id-aligned.
    #[inline]
    pub fn norms_sq(&self) -> &[f64] {
        &self.norms_sq
    }

    /// Squared Euclidean distance from point `id` to `target`.
    #[inline]
    pub fn distance_sq(&self, id: u32, target: &[f64]) -> f64 {
        self.point(id)
            .iter()
            .zip(target)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// The minimum bounding region of a set of point ids.
    ///
    /// Returns an empty MBR if `ids` is empty.
    pub fn mbr_of(&self, ids: &[u32]) -> Mbr {
        let mut mbr = Mbr::empty(self.dim);
        for &id in ids {
            mbr.include_point(self.point(id));
        }
        mbr
    }

    /// Whether point `id` lies inside `region` (inclusive bounds).
    #[inline]
    pub fn in_region(&self, id: u32, region: &Mbr) -> bool {
        region.contains_point(self.point(id))
    }

    /// All ids `0..len` in order.
    pub fn all_ids(&self) -> Vec<u32> {
        (0..self.len() as u32).collect()
    }

    /// Appends a point, returning its id (dynamic updates, paper §VIII).
    ///
    /// # Errors
    /// [`VkgError::Mismatch`] if the coordinate count does not match
    /// the dimensionality; [`VkgError::InvalidParameter`] if the dense
    /// `u32` id space is exhausted. This path is reachable from served
    /// dynamic updates, so it must not panic.
    pub fn try_push(&mut self, coords: &[f64]) -> VkgResult<u32> {
        if coords.len() != self.dim {
            return Err(VkgError::Mismatch {
                what: "point dimensionality",
                expected: self.dim,
                found: coords.len(),
            });
        }
        let Ok(id) = u32::try_from(self.len()) else {
            return Err(VkgError::InvalidParameter(format!(
                "point id space exhausted at {} points",
                self.len()
            )));
        };
        self.coords.extend_from_slice(coords);
        self.norms_sq.push(row_norm_sq(coords));
        Ok(id)
    }

    /// Overwrites the coordinates of an existing point.
    ///
    /// # Errors
    /// [`VkgError::Mismatch`] on a shape mismatch,
    /// [`VkgError::InvalidParameter`] on an out-of-range id — both
    /// reachable from served dynamic updates, so no panics here.
    pub fn try_set(&mut self, id: u32, coords: &[f64]) -> VkgResult<()> {
        if coords.len() != self.dim {
            return Err(VkgError::Mismatch {
                what: "point dimensionality",
                expected: self.dim,
                found: coords.len(),
            });
        }
        if id as usize >= self.len() {
            return Err(VkgError::InvalidParameter(format!(
                "point id {id} out of range (len {})",
                self.len()
            )));
        }
        let i = id as usize * self.dim;
        self.coords[i..i + self.dim].copy_from_slice(coords);
        self.norms_sq[id as usize] = row_norm_sq(coords);
        Ok(())
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        (self.coords.len() + self.norms_sq.len()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> PointSet {
        // Four points at unit-square corners in 2-D.
        PointSet::from_rows(2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0])
    }

    #[test]
    fn shape_and_access() {
        let ps = grid();
        assert_eq!(ps.dim(), 2);
        assert_eq!(ps.len(), 4);
        assert_eq!(ps.point(2), &[0.0, 1.0]);
        assert_eq!(ps.coord(3, 1), 1.0);
    }

    #[test]
    fn distances() {
        let ps = grid();
        assert_eq!(ps.distance_sq(0, &[1.0, 1.0]), 2.0);
        assert_eq!(ps.distance_sq(3, &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn bounding_region() {
        let ps = grid();
        let mbr = ps.mbr_of(&[0, 3]);
        assert_eq!(mbr.min(0), 0.0);
        assert_eq!(mbr.max(0), 1.0);
        assert_eq!(mbr.min(1), 0.0);
        assert_eq!(mbr.max(1), 1.0);
        let sub = ps.mbr_of(&[1]);
        assert_eq!(sub.min(0), 1.0);
        assert_eq!(sub.max(0), 1.0);
    }

    #[test]
    fn region_membership() {
        let ps = grid();
        let region = ps.mbr_of(&[0, 1]); // bottom edge
        assert!(ps.in_region(0, &region));
        assert!(ps.in_region(1, &region));
        assert!(!ps.in_region(2, &region));
    }

    #[test]
    fn all_ids_dense() {
        assert_eq!(grid().all_ids(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn norms_track_mutations() {
        let mut ps = grid();
        assert_eq!(ps.norm_sq(3), 2.0);
        let id = ps.try_push(&[3.0, 4.0]).expect("well-shaped push");
        assert_eq!(id, 4);
        assert_eq!(ps.norm_sq(4), 25.0);
        ps.try_set(0, &[2.0, 0.0]).expect("well-shaped set");
        assert_eq!(ps.norm_sq(0), 4.0);
        assert_eq!(ps.norms_sq().len(), ps.len());
    }

    #[test]
    fn dynamic_shape_errors_are_typed() {
        let mut ps = grid();
        assert!(matches!(
            ps.try_push(&[1.0, 2.0, 3.0]),
            Err(VkgError::Mismatch {
                what: "point dimensionality",
                expected: 2,
                found: 3,
            })
        ));
        assert!(matches!(
            ps.try_set(0, &[1.0]),
            Err(VkgError::Mismatch { .. })
        ));
        assert!(matches!(
            ps.try_set(99, &[1.0, 2.0]),
            Err(VkgError::InvalidParameter(_))
        ));
        // Failed mutations leave the set untouched.
        assert_eq!(ps.len(), 4);
        assert_eq!(ps.point(0), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_DIM")]
    fn oversized_dim_rejected() {
        let _ = PointSet::from_rows(MAX_DIM + 1, vec![0.0; (MAX_DIM + 1) * 2]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn ragged_matrix_rejected() {
        let _ = PointSet::from_rows(3, vec![0.0; 7]);
    }
}
