//! Geometric-bucket latency/duration histogram.
//!
//! Promoted from the serving-layer load generator (`vkg-bench`'s
//! `latency.rs`, which now re-exports this type) so the whole workspace
//! shares exactly one bucketing implementation: server-side histograms
//! and the load generator's client-side histograms are comparable
//! bucket-for-bucket.
//!
//! Geometric buckets (≈9% relative width) over microseconds give
//! HDR-style bounded relative error for quantiles without storing raw
//! samples; the maximum is tracked exactly. Per-connection histograms
//! [`Histogram::merge`] into one report.

use std::time::Duration;

/// Bucket boundaries grow by this factor: `ceil(bucket upper bound) =
/// GROWTH^(i+1)` microseconds, so any reported quantile is within one
/// growth step of the true value.
pub const GROWTH: f64 = 1.09;

/// Fixed bucket count covers `GROWTH^BUCKETS` µs ≈ 36 minutes — beyond
/// any sane request latency; slower samples clamp into the last bucket.
pub const BUCKETS: usize = 256;

/// A fixed-size geometric latency histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            total: 0,
            max_us: 0,
        }
    }

    fn bucket_of(us: u64) -> usize {
        // log_GROWTH(us), computed without floats drifting at the low
        // end: bucket 0 holds [0, 1] µs.
        if us <= 1 {
            return 0;
        }
        let idx = (us as f64).ln() / GROWTH.ln();
        (idx.ceil() as usize).min(BUCKETS - 1)
    }

    /// Upper bound (µs) of a bucket, the value quantiles report.
    fn bucket_upper(idx: usize) -> u64 {
        if idx == 0 {
            return 1;
        }
        GROWTH.powi(idx as i32).ceil() as u64
    }

    /// Records one sample.
    pub fn record(&mut self, latency: Duration) {
        self.record_us(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one sample given directly in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.counts[Self::bucket_of(us)] += 1;
        self.total += 1;
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact maximum recorded latency.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us)
    }

    /// Exact maximum recorded latency in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The latency at quantile `q ∈ [0, 1]`, within one bucket's
    /// relative error (and never above the exact maximum). Returns zero
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Duration::from_micros(Self::bucket_upper(idx).min(self.max_us));
            }
        }
        self.max()
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// The non-empty buckets as `(bucket index, count)` pairs, in index
    /// order — the sparse form snapshots and the wire format carry.
    pub fn sparse_buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
    }

    /// Rebuilds a histogram from its sparse form. Bucket indices at or
    /// beyond [`BUCKETS`] clamp into the last bucket (a decoder never
    /// panics on a snapshot from a build with different constants), and
    /// `total` is recomputed from the counts so the invariant
    /// `total == Σ counts` cannot be violated by a forged snapshot.
    pub fn from_sparse(buckets: &[(u32, u64)], max_us: u64) -> Self {
        let mut h = Histogram::new();
        for &(idx, count) in buckets {
            let idx = (idx as usize).min(BUCKETS - 1);
            h.counts[idx] += count;
            h.total += count;
        }
        h.max_us = max_us;
        h
    }

    /// One-line `p50/p95/p99/max` summary in milliseconds.
    pub fn summary(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        format!(
            "p50={:.2}ms p95={:.2}ms p99={:.2}ms max={:.2}ms (n={})",
            ms(self.quantile(0.50)),
            ms(self.quantile(0.95)),
            ms(self.quantile(0.99)),
            ms(self.max()),
            self.total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn quantiles_bounded_by_bucket_error() {
        let mut h = Histogram::new();
        for us in 1..=10_000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.len(), 10_000);
        for (q, exact) in [(0.50, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q).as_micros() as f64;
            let rel = (got - exact).abs() / exact;
            assert!(rel < GROWTH - 1.0 + 0.01, "q{q}: got {got}, want ≈{exact}");
        }
        assert_eq!(h.max(), Duration::from_micros(10_000));
    }

    #[test]
    fn quantile_never_exceeds_exact_max() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(777));
        assert_eq!(h.quantile(0.99), Duration::from_micros(777));
        assert_eq!(h.quantile(1.0), Duration::from_micros(777));
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..1000u64 {
            let d = Duration::from_micros(i * 17 % 4096);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            whole.record(d);
        }
        a.merge(&b);
        assert_eq!(a.len(), whole.len());
        assert_eq!(a.max(), whole.max());
        for q in [0.5, 0.9, 0.95, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn oversized_samples_clamp_into_last_bucket() {
        let mut h = Histogram::new();
        h.record(Duration::from_secs(86_400));
        assert_eq!(h.len(), 1);
        assert_eq!(h.max(), Duration::from_secs(86_400));
        assert!(h.quantile(0.5) <= h.max());
    }

    #[test]
    fn sparse_roundtrip_is_lossless() {
        let mut h = Histogram::new();
        for us in [0, 1, 2, 40, 41, 9_000, 9_000, 123_456_789] {
            h.record_us(us);
        }
        let sparse: Vec<(u32, u64)> = h.sparse_buckets().collect();
        let back = Histogram::from_sparse(&sparse, h.max_us());
        assert_eq!(back, h);
    }

    #[test]
    fn from_sparse_clamps_out_of_range_buckets() {
        let h = Histogram::from_sparse(&[(10_000, 3)], 500);
        assert_eq!(h.len(), 3);
        assert!(h.quantile(0.5) <= h.max());
    }
}
