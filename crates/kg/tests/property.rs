//! Property-based tests for the knowledge-graph substrate.

use proptest::prelude::*;
use vkg_kg::zipf::Zipf;
use vkg_kg::{EntityId, Interner, KnowledgeGraph, RelationId};

/// Arbitrary triple script over small id spaces.
fn triple_script() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((0u8..20, 0u8..5, 0u8..20), 0..120)
}

proptest! {
    /// Adjacency lists, membership set, and degree stay mutually
    /// consistent under arbitrary insertion sequences with duplicates.
    #[test]
    fn graph_adjacency_consistent(script in triple_script()) {
        let mut g = KnowledgeGraph::new();
        for &(h, r, t) in &script {
            g.add_fact(&format!("e{h}"), &format!("r{r}"), &format!("e{t}")).unwrap();
        }
        // Every stored triple is visible through all access paths.
        for tr in g.triples() {
            prop_assert!(g.has_edge(tr.head, tr.relation, tr.tail));
            prop_assert!(g.tails(tr.head, tr.relation).any(|t| t == tr.tail));
            prop_assert!(g.heads(tr.tail, tr.relation).any(|h| h == tr.head));
        }
        // Degrees sum to 2 × |E| (each edge contributes one out + one in).
        let total: usize = (0..g.num_entities() as u32)
            .map(|i| g.degree(EntityId(i)))
            .sum();
        prop_assert_eq!(total, 2 * g.num_edges());
        // Triples are unique.
        let set: std::collections::HashSet<_> = g.triples().iter().copied().collect();
        prop_assert_eq!(set.len(), g.num_edges());
    }

    /// Removing an edge erases it from every access path and never
    /// touches other edges.
    #[test]
    fn graph_removal_is_precise(script in triple_script(), victim in 0usize..200) {
        let mut g = KnowledgeGraph::new();
        for &(h, r, t) in &script {
            g.add_fact(&format!("e{h}"), &format!("r{r}"), &format!("e{t}")).unwrap();
        }
        if g.num_edges() == 0 {
            return Ok(());
        }
        let before = g.num_edges();
        let tr = g.triples()[victim % before];
        prop_assert!(g.remove_triple(tr.head, tr.relation, tr.tail));
        prop_assert_eq!(g.num_edges(), before - 1);
        prop_assert!(!g.has_edge(tr.head, tr.relation, tr.tail));
        for other in g.triples() {
            prop_assert!(g.has_edge(other.head, other.relation, other.tail));
        }
    }

    /// Interner ids are dense, stable and name-reversible.
    #[test]
    fn interner_bijection(names in prop::collection::vec("[a-z]{1,6}", 1..40)) {
        let mut i = Interner::new();
        let ids: Vec<u32> = names.iter().map(|n| i.intern(n)).collect();
        for (name, &id) in names.iter().zip(&ids) {
            prop_assert_eq!(i.get(name), Some(id));
            prop_assert_eq!(i.name(id), Some(name.as_str()));
            // Re-interning never mints a new id.
            prop_assert_eq!(i.intern(name), id);
        }
        let distinct: std::collections::HashSet<_> = names.iter().collect();
        prop_assert_eq!(i.len(), distinct.len());
    }

    /// Zipf pmf is a probability distribution and is non-increasing.
    #[test]
    fn zipf_pmf_valid(n in 1usize..500, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|i| z.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "pmf sums to {total}");
        for i in 1..n {
            prop_assert!(z.pmf(i - 1) >= z.pmf(i) - 1e-12);
        }
    }

    /// Zipf samples always land in range.
    #[test]
    fn zipf_samples_in_range(n in 1usize..100, s in 0.0f64..2.5, seed: u64) {
        use rand::SeedableRng;
        let z = Zipf::new(n, s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// TSV roundtrip preserves the edge multiset for arbitrary graphs.
    #[test]
    fn tsv_roundtrip(script in triple_script()) {
        let mut g = KnowledgeGraph::new();
        for &(h, r, t) in &script {
            g.add_fact(&format!("e{h}"), &format!("r{r}"), &format!("e{t}")).unwrap();
        }
        let mut buf = Vec::new();
        vkg_kg::io::write_tsv(&g, &mut buf).unwrap();
        let g2 = vkg_kg::io::read_tsv(buf.as_slice()).unwrap();
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for tr in g.triples() {
            let h = g2.entity_id(g.entity_name(tr.head).unwrap()).unwrap();
            let r = g2.relation_id(g.relation_name(tr.relation).unwrap()).unwrap();
            let t = g2.entity_id(g.entity_name(tr.tail).unwrap()).unwrap();
            prop_assert!(g2.has_edge(h, r, t));
        }
    }
}

#[test]
fn relation_ids_have_index() {
    assert_eq!(RelationId(3).index(), 3);
}
