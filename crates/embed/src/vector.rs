//! Dense vector helpers shared by the embedding trainers and stores.
//!
//! These operate on `&[f64]` slices so callers can keep their data in flat
//! matrices (struct-of-arrays) without materializing per-row `Vec`s.

/// Euclidean (L2) distance between `a` and `b`.
///
/// # Panics
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Squared Euclidean distance (no sqrt — cheaper for comparisons).
#[inline]
pub fn l2_distance_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Manhattan (L1) distance.
#[inline]
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Inner product `a · b`.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// L2 norm of `v`.
#[inline]
pub fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Scales `v` in place to unit L2 norm (no-op on the zero vector).
pub fn normalize(v: &mut [f64]) {
    let n = norm(v);
    if n > 1e-12 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

/// Element-wise `out = a + b`.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise `out = a - b`.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_agree_on_axis_pair() {
        let a = [0.0, 0.0, 0.0];
        let b = [3.0, 4.0, 0.0];
        assert!((l2_distance(&a, &b) - 5.0).abs() < 1e-12);
        assert!((l2_distance_sq(&a, &b) - 25.0).abs() < 1e-12);
        assert!((l1_distance(&a, &b) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn dot_and_norm() {
        let a = [1.0, 2.0, 2.0];
        assert!((norm(&a) - 3.0).abs() < 1e-12);
        assert!((dot(&a, &a) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = [1.0, -2.0];
        let b = [0.5, 3.0];
        let s = add(&a, &b);
        let back = sub(&s, &b);
        assert!((back[0] - a[0]).abs() < 1e-12);
        assert!((back[1] - a[1]).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = [1.0, 2.0, 3.0];
        let b = [-1.0, 0.5, 9.0];
        assert_eq!(l2_distance(&a, &b), l2_distance(&b, &a));
        assert_eq!(l2_distance(&a, &a), 0.0);
        assert_eq!(l1_distance(&a, &a), 0.0);
    }
}
