//! The scheduler's seed-deterministic random source.
//!
//! A SplitMix64 stream: every scheduling decision (preempt or not,
//! which runnable thread runs next, which condvar waiter a notify
//! wakes) draws from this and nothing else, so a schedule is a pure
//! function of the seed and replaying a failing seed reproduces the
//! failing interleaving exactly. Hand-rolled so the checker does not
//! depend on the workspace `rand` shim.

/// SplitMix64 (Steele, Lea & Flood) — 64 bits of state, full period.
#[derive(Debug)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        // Decorate the raw seed so small consecutive seeds (0, 1, 2…)
        // still start in well-mixed states.
        Self(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..n` (`n > 0`). The modulo bias over a
    /// 64-bit stream is irrelevant for schedule exploration.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(3) < 3);
        }
    }
}
