//! The global-free metrics registry.
//!
//! A [`Registry`] is a named collection of [`Counter`]s, [`Gauge`]s,
//! and [`HistogramCell`]s. Nothing here is `static`: each `Vkg` and
//! each `Server` owns its own registry, and tests can spin up as many
//! as they like without cross-talk. Handles are cheap `Arc` clones and
//! record lock-free (counters/gauges) or under a short mutex
//! (histograms, which are only touched once per served request).
//!
//! [`Registry::noop`] produces a registry whose handles carry no
//! storage at all: every recording method is one branch on an
//! always-taken pattern. The microbench overhead gate times the same
//! query loop against an active and a no-op registry and requires the
//! difference to stay within 5%.

use std::time::Duration;

use vkg_sync::{Arc, AtomicU64, Mutex, Ordering};

use crate::hist::Histogram;
use crate::snapshot::{HistSnapshot, MetricsSnapshot};

/// Stripe count for counters: hot-path increments from different
/// threads usually land on different cache lines. Must be a power of
/// two (the stripe picker masks).
const STRIPES: usize = 8;

/// Picks a stripe from the address of a stack slot: threads have
/// distinct stacks, so concurrent writers spread across stripes without
/// any thread-local machinery (and without `std::thread` — the model
/// runtime's turnstile threads work too).
fn stripe() -> usize {
    let marker = 0u8;
    // Stacks are at least page-aligned apart; shifting off the low bits
    // of the frame offset keeps the mapping stable within one thread.
    (&marker as *const u8 as usize >> 12) & (STRIPES - 1)
}

#[derive(Debug)]
struct Stripes {
    cells: [AtomicU64; STRIPES],
}

impl Stripes {
    fn new() -> Self {
        Stripes {
            cells: Default::default(),
        }
    }

    fn add(&self, n: u64) {
        // relaxed: pure statistic; no reader infers other state from
        // the count, and the snapshot sums stripes with no ordering
        // requirement beyond each cell's own modification order.
        self.cells[stripe()].fetch_add(n, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.cells
            .iter()
            // relaxed: pure statistic (see `add`).
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

/// A monotonically increasing counter handle. Cloning shares the
/// underlying cells; a handle from [`Registry::noop`] records nothing.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cells: Option<Arc<Stripes>>,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cells) = &self.cells {
            cells.add(n);
        }
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (sum over stripes).
    pub fn get(&self) -> u64 {
        self.cells.as_ref().map_or(0, |c| c.sum())
    }
}

/// A last-value-wins gauge handle (queue depth, epoch, pool width).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.cell {
            // relaxed: pure statistic; last-value-wins with no ordering
            // obligation to other state.
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // relaxed: pure statistic (see `set`).
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A histogram handle. Recording takes a short mutex — histograms are
/// touched once per served request, not per point, so contention is
/// bounded by request rate.
#[derive(Debug, Clone, Default)]
pub struct HistogramCell {
    inner: Option<Arc<Mutex<Histogram>>>,
}

impl HistogramCell {
    /// Records one duration sample.
    #[inline]
    pub fn record(&self, d: Duration) {
        if let Some(h) = &self.inner {
            h.lock().record(d);
        }
    }

    /// Records one sample in microseconds.
    #[inline]
    pub fn record_us(&self, us: u64) {
        if let Some(h) = &self.inner {
            h.lock().record_us(us);
        }
    }

    /// A copy of the current histogram (empty for no-op handles).
    pub fn read(&self) -> Histogram {
        self.inner
            .as_ref()
            .map_or_else(Histogram::new, |h| h.lock().clone())
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<Vec<(String, Arc<Stripes>)>>,
    gauges: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    hists: Mutex<Vec<(String, Arc<Mutex<Histogram>>)>>,
}

/// A named, instance-scoped collection of metrics.
///
/// Registration (`counter` / `gauge` / `histogram`) is get-or-create by
/// name and intended for setup time; the returned handles are what hot
/// paths touch. [`Registry::snapshot`] dumps every metric, sorted by
/// name, into a [`MetricsSnapshot`].
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// A live registry.
    pub fn active() -> Self {
        Registry {
            inner: Some(Arc::new(Inner {
                counters: Mutex::with_name(Vec::new(), "obs.counters"),
                gauges: Mutex::with_name(Vec::new(), "obs.gauges"),
                hists: Mutex::with_name(Vec::new(), "obs.hists"),
            })),
        }
    }

    /// A registry that records nothing and snapshots empty. Handles it
    /// hands out are storage-free.
    pub fn noop() -> Self {
        Registry { inner: None }
    }

    /// Whether this registry discards everything.
    pub fn is_noop(&self) -> bool {
        self.inner.is_none()
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::default();
        };
        let mut list = inner.counters.lock();
        let cells = match list.iter().find(|(n, _)| n == name) {
            Some((_, c)) => c.clone(),
            None => {
                let c = Arc::new(Stripes::new());
                list.push((name.to_string(), c.clone()));
                c
            }
        };
        Counter { cells: Some(cells) }
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::default();
        };
        let mut list = inner.gauges.lock();
        let cell = match list.iter().find(|(n, _)| n == name) {
            Some((_, c)) => c.clone(),
            None => {
                let c = Arc::new(AtomicU64::new(0));
                list.push((name.to_string(), c.clone()));
                c
            }
        };
        Gauge { cell: Some(cell) }
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> HistogramCell {
        let Some(inner) = &self.inner else {
            return HistogramCell::default();
        };
        let mut list = inner.hists.lock();
        let cell = match list.iter().find(|(n, _)| n == name) {
            Some((_, h)) => h.clone(),
            None => {
                let h = Arc::new(Mutex::with_name(Histogram::new(), "obs.hist"));
                list.push((name.to_string(), h.clone()));
                h
            }
        };
        HistogramCell { inner: Some(cell) }
    }

    /// A point-in-time dump of every registered metric, sorted by name.
    /// Span fields are left empty — the owner of the span ring fills
    /// them in (see [`MetricsSnapshot`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(inner) = &self.inner else {
            return snap;
        };
        snap.counters = inner
            .counters
            .lock()
            .iter()
            .map(|(n, c)| (n.clone(), c.sum()))
            .collect();
        snap.gauges = inner
            .gauges
            .lock()
            .iter()
            // relaxed: pure statistic (see `Gauge::set`).
            .map(|(n, g)| (n.clone(), g.load(Ordering::Relaxed)))
            .collect();
        snap.hists = inner
            .hists
            .lock()
            .iter()
            .map(|(n, h)| (n.clone(), HistSnapshot::from_histogram(&h.lock())))
            .collect();
        snap.counters.sort();
        snap.gauges.sort();
        snap.hists.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::active();
        let c = r.counter("queries");
        c.incr();
        c.add(4);
        // A second lookup shares the same cells.
        assert_eq!(r.counter("queries").get(), 5);
        let g = r.gauge("depth");
        g.set(17);
        g.set(3);
        assert_eq!(r.gauge("depth").get(), 3);
    }

    #[test]
    fn histogram_handle_records() {
        let r = Registry::active();
        let h = r.histogram("latency_us");
        h.record(Duration::from_micros(500));
        h.record_us(700);
        let read = r.histogram("latency_us").read();
        assert_eq!(read.len(), 2);
        assert_eq!(read.max(), Duration::from_micros(700));
    }

    #[test]
    fn noop_registry_discards_everything() {
        let r = Registry::noop();
        assert!(r.is_noop());
        let c = r.counter("x");
        c.add(100);
        assert_eq!(c.get(), 0);
        let g = r.gauge("y");
        g.set(9);
        assert_eq!(g.get(), 0);
        let h = r.histogram("z");
        h.record_us(123);
        assert!(h.read().is_empty());
        assert_eq!(r.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::active();
        r.counter("b").add(2);
        r.counter("a").add(1);
        r.gauge("g").set(7);
        r.histogram("h").record_us(50);
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("a".to_string(), 1), ("b".to_string(), 2)]);
        assert_eq!(s.gauges, vec![("g".to_string(), 7)]);
        assert_eq!(s.hists.len(), 1);
        assert_eq!(s.hists[0].0, "h");
        assert_eq!(s.hists[0].1.total, 1);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let r = Registry::active();
        let c = r.counter("hits");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
