//! TSV import/export of knowledge graphs.
//!
//! Format: one triple per line, `head<TAB>relation<TAB>tail`, names as
//! opaque strings. This is the de-facto interchange format of the TransE
//! family of embedding code bases (FB15k, WN18 etc. ship this way), so a
//! graph prepared elsewhere — including one whose embeddings were trained
//! externally — can be loaded directly.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::error::{KgError, Result};
use crate::graph::KnowledgeGraph;

/// Reads a graph from TSV triples.
///
/// Blank lines and lines starting with `#` are skipped. Each remaining
/// line must have exactly three tab-separated fields.
pub fn read_tsv<R: Read>(reader: R) -> Result<KnowledgeGraph> {
    let mut graph = KnowledgeGraph::new();
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split('\t');
        let (h, r, t) = match (fields.next(), fields.next(), fields.next(), fields.next()) {
            (Some(h), Some(r), Some(t), None) => (h, r, t),
            _ => {
                return Err(KgError::Parse {
                    line: lineno + 1,
                    message: format!("expected 3 tab-separated fields, got {trimmed:?}"),
                })
            }
        };
        graph.add_fact(h, r, t)?;
    }
    Ok(graph)
}

/// Writes all triples of `graph` as TSV.
pub fn write_tsv<W: Write>(graph: &KnowledgeGraph, writer: W) -> Result<()> {
    let mut out = BufWriter::new(writer);
    for t in graph.triples() {
        let head = graph
            .entity_name(t.head)
            .ok_or(KgError::UnknownEntity(t.head.0))?;
        let rel = graph
            .relation_name(t.relation)
            .ok_or(KgError::UnknownRelation(t.relation.0))?;
        let tail = graph
            .entity_name(t.tail)
            .ok_or(KgError::UnknownEntity(t.tail.0))?;
        writeln!(out, "{head}\t{rel}\t{tail}")?;
    }
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_triples() {
        let mut g = KnowledgeGraph::new();
        g.add_fact("amy", "likes", "m1").unwrap();
        g.add_fact("bob", "dislikes", "m2").unwrap();
        g.add_fact("m1", "has_genre", "horror").unwrap();

        let mut bytes = Vec::new();
        write_tsv(&g, &mut bytes).unwrap();
        let g2 = read_tsv(bytes.as_slice()).unwrap();

        assert_eq!(g2.num_edges(), 3);
        assert_eq!(g2.num_entities(), g.num_entities());
        assert_eq!(g2.num_relations(), g.num_relations());
        let amy = g2.entity_id("amy").unwrap();
        let likes = g2.relation_id("likes").unwrap();
        let m1 = g2.entity_id("m1").unwrap();
        assert!(g2.has_edge(amy, likes, m1));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let input = "# header\n\namy\tlikes\tm1\n   \n";
        let g = read_tsv(input.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn wrong_arity_is_parse_error() {
        let input = "amy\tlikes\n";
        let err = read_tsv(input.as_bytes()).unwrap_err();
        assert!(matches!(err, KgError::Parse { line: 1, .. }));

        let input = "a\tb\tc\td\n";
        let err = read_tsv(input.as_bytes()).unwrap_err();
        assert!(matches!(err, KgError::Parse { line: 1, .. }));
    }

    #[test]
    fn parse_error_reports_line_number() {
        let input = "a\tb\tc\nbroken line\n";
        let err = read_tsv(input.as_bytes()).unwrap_err();
        match err {
            KgError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }
}
