//! Default (non-`model`) implementations: `#[inline]` newtypes over
//! `std::sync` with poisoning erased via `PoisonError::into_inner`, the
//! same recovery `parking_lot` gives. Zero state beyond the wrapped
//! primitive.

use std::sync::PoisonError;

/// A mutual-exclusion lock (see [`std::sync::Mutex`]), non-poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    pub(crate) inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates a named mutex. The name is diagnostic-only and unused in
    /// passthrough mode; the model runtime reports it in violations.
    #[inline]
    pub const fn with_name(value: T, _name: &'static str) -> Self {
        Self::new(value)
    }

    /// Consumes the mutex, returning the protected value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock (see [`std::sync::RwLock`]), non-poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard for [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Creates a named lock (name is used only by the model runtime).
    #[inline]
    pub const fn with_name(value: T, _name: &'static str) -> Self {
        Self::new(value)
    }

    /// Consumes the lock, returning the protected value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable tied to [`Mutex`] (see [`std::sync::Condvar`]).
///
/// `wait` consumes and returns the guard, so callers never observe the
/// unlocked window — the same shape the model-mode implementation
/// needs to make release-and-sleep atomic under the scheduler.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[inline]
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and sleeps until notified;
    /// reacquires before returning.
    #[inline]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard {
            inner: self
                .inner
                .wait(guard.inner)
                .unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Wakes one thread blocked in [`Condvar::wait`].
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every thread blocked in [`Condvar::wait`].
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A 64-bit atomic counter (see [`std::sync::atomic::AtomicU64`]).
#[derive(Debug, Default)]
pub struct AtomicU64 {
    inner: std::sync::atomic::AtomicU64,
}

impl AtomicU64 {
    /// Creates a new atomic with the given initial value.
    #[inline]
    pub const fn new(value: u64) -> Self {
        Self {
            inner: std::sync::atomic::AtomicU64::new(value),
        }
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self, order: super::Ordering) -> u64 {
        self.inner.load(order)
    }

    /// Stores `value`.
    #[inline]
    pub fn store(&self, value: u64, order: super::Ordering) {
        self.inner.store(value, order)
    }

    /// Adds `value`, returning the previous value.
    #[inline]
    pub fn fetch_add(&self, value: u64, order: super::Ordering) -> u64 {
        self.inner.fetch_add(value, order)
    }

    /// Stores `new` if the current value is `current`; returns the
    /// previous value as `Ok` on success, `Err` on mismatch (see
    /// [`std::sync::atomic::AtomicU64::compare_exchange`]).
    #[inline]
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: super::Ordering,
        failure: super::Ordering,
    ) -> Result<u64, u64> {
        self.inner.compare_exchange(current, new, success, failure)
    }
}

/// A boolean atomic flag (see [`std::sync::atomic::AtomicBool`]).
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new flag with the given initial value.
    #[inline]
    pub const fn new(value: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self, order: super::Ordering) -> bool {
        self.inner.load(order)
    }

    /// Stores `value`.
    #[inline]
    pub fn store(&self, value: bool, order: super::Ordering) {
        self.inner.store(value, order)
    }

    /// Stores `value`, returning the previous value.
    #[inline]
    pub fn swap(&self, value: bool, order: super::Ordering) -> bool {
        self.inner.swap(value, order)
    }
}

/// A shared cell the *model* runtime checks for data races.
///
/// In passthrough mode it is simply a tiny mutex-backed cell, so
/// scenario code shared between tier-1 tests and model tests (see
/// `tests/concurrency.rs`) compiles and behaves identically in both —
/// only the model build gets the happens-before verdict.
#[derive(Debug, Default)]
pub struct RaceCell<T> {
    inner: std::sync::Mutex<T>,
}

impl<T: Copy> RaceCell<T> {
    /// Creates a new cell holding `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates a named cell (name is used only by the model runtime).
    #[inline]
    pub const fn with_name(value: T, _name: &'static str) -> Self {
        Self::new(value)
    }

    /// Reads the current value.
    #[inline]
    pub fn get(&self) -> T {
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, value: T) {
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner) = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ordering;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Mutex::new(0_u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);

        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            started = cv.wait(started);
        }
        h.join().expect("notifier thread");
        assert!(*started);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn atomics_passthrough() {
        let c = AtomicU64::new(1);
        assert_eq!(c.fetch_add(2, Ordering::Relaxed), 1);
        assert_eq!(c.load(Ordering::Acquire), 3);
        c.store(7, Ordering::Release);
        assert_eq!(c.load(Ordering::Relaxed), 7);

        let f = AtomicBool::new(false);
        assert!(!f.swap(true, Ordering::Relaxed));
        assert!(f.load(Ordering::Relaxed));
    }

    #[test]
    fn race_cell_is_a_plain_cell() {
        let c = RaceCell::with_name(0_u64, "cell");
        c.set(9);
        assert_eq!(c.get(), 9);
    }
}
