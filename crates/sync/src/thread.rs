//! Thread spawning through the facade.
//!
//! Passthrough mode re-exports `std::thread`'s pieces. In model mode,
//! a spawn performed on a *managed* thread creates another managed
//! thread: a real OS thread that parks on the runtime's turnstile and
//! runs only when the seeded scheduler says so. Spawns on unmanaged
//! threads (a server accept loop in an ordinary integration test, say)
//! fall through to `std::thread` untouched.

#[cfg(not(feature = "model"))]
pub use std::thread::{sleep, yield_now, Builder, JoinHandle};

#[cfg(not(feature = "model"))]
/// Spawns an OS thread (passthrough to [`std::thread::spawn`]).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    std::thread::spawn(f)
}

#[cfg(feature = "model")]
pub use model_impl::{sleep, spawn, yield_now, Builder, JoinHandle};

#[cfg(feature = "model")]
mod model_impl {
    use std::panic::{self, AssertUnwindSafe};
    use std::sync::{Arc, Mutex, PoisonError};
    use std::time::Duration;

    use crate::model::runtime::{current, set_current, ModelAbort, Runtime};

    type ResultSlot<T> = Arc<Mutex<Option<std::thread::Result<T>>>>;

    /// Handle to a spawned thread; mirrors [`std::thread::JoinHandle`].
    #[derive(Debug)]
    pub struct JoinHandle<T>(Inner<T>);

    #[derive(Debug)]
    enum Inner<T> {
        /// Spawned outside any model run: a plain std handle.
        Unmanaged(std::thread::JoinHandle<T>),
        /// Spawned inside a model run: joined through the scheduler.
        Managed {
            rt: Arc<Runtime>,
            tid: usize,
            /// The underlying OS thread (exits right after the child
            /// reports itself finished).
            os: std::thread::JoinHandle<()>,
            slot: ResultSlot<T>,
        },
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish, returning its result (or
        /// the panic payload, like std).
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Inner::Unmanaged(h) => h.join(),
                Inner::Managed { rt, tid, os, slot } => {
                    if let Some((rt2, me)) = current() {
                        debug_assert!(Arc::ptr_eq(&rt, &rt2), "join across model runs");
                        rt2.join_thread(me, tid);
                    }
                    // The model join already ordered us after the
                    // child's completion; the OS join is instant.
                    let _ = os.join();
                    slot.lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take()
                        .expect("managed thread stored its result before finishing")
                }
            }
        }

        /// Whether the thread has finished running.
        pub fn is_finished(&self) -> bool {
            match &self.0 {
                Inner::Unmanaged(h) => h.is_finished(),
                Inner::Managed { rt, tid, .. } => rt.is_thread_finished(*tid),
            }
        }
    }

    /// Mirrors [`std::thread::Builder`] (name only).
    #[derive(Debug, Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// Creates a builder with no name set.
        pub fn new() -> Self {
            Self::default()
        }

        /// Names the thread — visible in model violation reports and
        /// on the OS thread.
        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        /// Spawns the thread, propagating OS spawn failure.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            match current() {
                None => {
                    let mut b = std::thread::Builder::new();
                    if let Some(n) = &self.name {
                        b = b.name(n.clone());
                    }
                    Ok(JoinHandle(Inner::Unmanaged(b.spawn(f)?)))
                }
                Some((rt, me)) => spawn_managed(rt, me, self.name, f),
            }
        }
    }

    fn spawn_managed<F, T>(
        rt: Arc<Runtime>,
        me: usize,
        name: Option<String>,
        f: F,
    ) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let tid = rt.register_child(me, name.clone());
        let slot: ResultSlot<T> = Arc::new(Mutex::new(None));
        let slot2 = slot.clone();
        let rt2 = rt.clone();
        let mut b = std::thread::Builder::new();
        if let Some(n) = name {
            b = b.name(n);
        }
        let os = b.spawn(move || {
            set_current(Some((rt2.clone(), tid)));
            rt2.block_until_scheduled(tid);
            let result = panic::catch_unwind(AssertUnwindSafe(f));
            match result {
                Ok(v) => {
                    *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(Ok(v));
                }
                Err(p) => {
                    if !p.is::<ModelAbort>() {
                        let msg = if let Some(s) = p.downcast_ref::<&str>() {
                            (*s).to_string()
                        } else if let Some(s) = p.downcast_ref::<String>() {
                            s.clone()
                        } else {
                            "<non-string panic payload>".to_string()
                        };
                        rt2.flag_thread_panic(tid, msg);
                    }
                    *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(Err(p));
                }
            }
            rt2.thread_finished(tid);
            set_current(None);
        })?;
        // The child physically exists now; the spawn's scheduling
        // point may hand it the processor straight away.
        rt.yield_point(me);
        Ok(JoinHandle(Inner::Managed { rt, tid, os, slot }))
    }

    /// Spawns a thread; managed if called from inside a model run.
    ///
    /// # Panics
    /// Like [`std::thread::spawn`], panics if the OS refuses to spawn.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("failed to spawn thread")
    }

    /// A scheduling point in model runs; [`std::thread::yield_now`]
    /// otherwise.
    pub fn yield_now() {
        if let Some((rt, me)) = current() {
            rt.yield_point(me);
        } else {
            std::thread::yield_now();
        }
    }

    /// Model time is abstract: on a managed thread a sleep is just a
    /// scheduling point. Unmanaged threads really sleep.
    pub fn sleep(dur: Duration) {
        if let Some((rt, me)) = current() {
            rt.yield_point(me);
        } else {
            std::thread::sleep(dur);
        }
    }
}
