//! Evaluation baselines (paper §VI).
//!
//! Everything the paper compares the cracking index against, built from
//! scratch:
//!
//! * [`linear_scan`] — the **no-index** baseline: exact top-k by scanning
//!   every entity in the original embedding space S₁. Also the ground
//!   truth oracle for the precision@K figures.
//! * [`phtree`] — the **PH-tree** [22]: a space-efficient bit-interleaved
//!   prefix-sharing hypercube tree indexing the raw high-dimensional
//!   embeddings directly (no S₂ transform), with best-first kNN. At
//!   d ≥ 50 its hypercube fan-out degenerates and search approaches a
//!   linear scan — exactly the behaviour Figure 3 reports.
//! * [`h2alsh`] — **H2-ALSH** [12]: homocentric-hypersphere norm
//!   partitioning + QNF asymmetric transform + E2LSH hash tables for
//!   maximum-inner-product search. Single relationship type only, as the
//!   paper stresses.
//! * [`engine`] — [`vkg_core::engine::QueryEngine`] adapters for all
//!   three, so the harness dispatches over `&mut dyn QueryEngine`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod h2alsh;
pub mod linear_scan;
pub mod phtree;

pub use engine::{H2AlshEngine, LinearScanEngine, PhTreeEngine};
pub use h2alsh::{H2Alsh, H2AlshConfig};
pub use linear_scan::LinearScan;
pub use phtree::PhTree;
