//! Result tables: aligned text to stdout plus CSV files under `results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-aligned table with a title, also serializable to CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:>w$}  ", h, w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:>w$}  ", cell, w = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// CSV rendering (headers + rows; cells are assumed comma-free
    /// numerics/identifiers).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Prints the table and writes `results/<file>.csv`.
    pub fn emit(&self, results_dir: &Path, file: &str) {
        println!("{}", self.render());
        if let Err(e) = fs::create_dir_all(results_dir) {
            eprintln!("warning: cannot create {}: {e}", results_dir.display());
            return;
        }
        let path = results_dir.join(format!("{file}.csv"));
        if let Err(e) = fs::write(&path, self.to_csv()) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            println!("[written {}]\n", path.display());
        }
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1_000.0 {
        format!("{us:.1}us")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1_000.0)
    } else {
        format!("{:.3}s", us / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["method", "time"]);
        t.row(vec!["no-index".into(), "12.0ms".into()]);
        t.row(vec!["cracking".into(), "0.5ms".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("no-index"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("method,time"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500.0us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
    }
}
