//! Per-query span records.
//!
//! One [`Span`] is produced per served request and follows it through
//! the serving pipeline's phases: admission → queue wait → batch wait
//! (same-shard group draining) → shard lock (including crack-log
//! replay) → crack/refine execution → response encode. Spans are
//! fixed-size and encode into a constant number of
//! `u64` words ([`SPAN_WORDS`]) so the lock-free [`crate::SpanRing`]
//! can store them in per-slot atomic arrays without allocation.

/// Number of `u64` words a span packs into (the ring's slot width).
pub const SPAN_WORDS: usize = 9;

/// How a traced request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum SpanOutcome {
    /// Answered successfully.
    #[default]
    Ok = 0,
    /// Answered with a typed error.
    Error = 1,
    /// Admitted but expired in the queue before a worker reached it.
    DeadlineExpired = 2,
}

impl SpanOutcome {
    /// Decodes a wire byte, clamping unknown values to `Error`.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => SpanOutcome::Ok,
            2 => SpanOutcome::DeadlineExpired,
            _ => SpanOutcome::Error,
        }
    }
}

/// One request's trip through the serving pipeline.
///
/// Durations are nanoseconds measured on the server's [`crate::Clock`].
/// `lock_ns` deliberately includes crack-log replay: acquiring a shard
/// means syncing it with siblings' pending cracks, and that replay cost
/// is exactly what the span is there to expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Server-assigned query id, monotonically increasing.
    pub id: u64,
    /// Wire opcode of the request.
    pub op: u8,
    /// Shard the request routed to, or `u32::MAX` for unrouted ops.
    pub shard: u32,
    /// How the request ended.
    pub outcome: SpanOutcome,
    /// Admission (successful `try_push`) → worker pop.
    pub queue_ns: u64,
    /// Worker pop → shard lock acquired (includes crack-log replay).
    pub lock_ns: u64,
    /// Shard lock acquired → result ready (crack/refine work).
    pub exec_ns: u64,
    /// Response encode on the connection thread.
    pub encode_ns: u64,
    /// Time spent waiting for same-shard batch siblings: worker pop →
    /// this request's shard lock acquisition, when the worker drained it
    /// as part of a multi-request group. Zero on the single-request
    /// path.
    pub batch_ns: u64,
    /// Refine steps (S1 distance evaluations) the query performed.
    pub refine_steps: u64,
}

impl Span {
    /// Packs the span into its fixed word form for ring storage.
    pub fn to_words(&self) -> [u64; SPAN_WORDS] {
        let tag = u64::from(self.op) | (u64::from(self.outcome as u8) << 8);
        [
            self.id,
            tag,
            u64::from(self.shard),
            self.queue_ns,
            self.lock_ns,
            self.exec_ns,
            self.encode_ns,
            self.batch_ns,
            self.refine_steps,
        ]
    }

    /// Unpacks a span from its word form.
    pub fn from_words(w: &[u64; SPAN_WORDS]) -> Self {
        Span {
            id: w[0],
            op: (w[1] & 0xFF) as u8,
            outcome: SpanOutcome::from_u8(((w[1] >> 8) & 0xFF) as u8),
            shard: (w[2] & u64::from(u32::MAX)) as u32,
            queue_ns: w[3],
            lock_ns: w[4],
            exec_ns: w[5],
            encode_ns: w[6],
            batch_ns: w[7],
            refine_steps: w[8],
        }
    }

    /// Total server-side time (all phases).
    pub fn total_ns(&self) -> u64 {
        self.queue_ns
            .saturating_add(self.lock_ns)
            .saturating_add(self.exec_ns)
            .saturating_add(self.encode_ns)
            .saturating_add(self.batch_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip_is_lossless() {
        let s = Span {
            id: 42,
            op: 0x03,
            shard: 7,
            outcome: SpanOutcome::DeadlineExpired,
            queue_ns: 1_000,
            lock_ns: 2_000,
            exec_ns: 3_000,
            encode_ns: 4_000,
            batch_ns: 500,
            refine_steps: 99,
        };
        assert_eq!(Span::from_words(&s.to_words()), s);
        assert_eq!(s.total_ns(), 10_500);
    }

    #[test]
    fn unrouted_shard_survives_roundtrip() {
        let s = Span {
            shard: u32::MAX,
            ..Span::default()
        };
        assert_eq!(Span::from_words(&s.to_words()).shard, u32::MAX);
    }

    #[test]
    fn unknown_outcome_byte_clamps_to_error() {
        assert_eq!(SpanOutcome::from_u8(9), SpanOutcome::Error);
        assert_eq!(SpanOutcome::from_u8(0), SpanOutcome::Ok);
        assert_eq!(SpanOutcome::from_u8(2), SpanOutcome::DeadlineExpired);
    }
}
