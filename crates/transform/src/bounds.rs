//! Closed-form accuracy bounds: Theorems 1, 2 and 3 of the paper.
//!
//! These are pure functions of (ε, α) or of the observed candidate
//! distances, so query processing can attach a concrete guarantee to
//! every answer and tests can check the empirical distortion frequencies
//! against them.

/// Theorem 1, upper tail: `Pr[l₂ ≥ √(1+ε)·l₁] ≤ Δᵤ(ε) = (√(1+ε)/e^{ε/2})^α`
/// for any `ε > 0`.
///
/// # Panics
/// Panics if `ε ≤ 0` or `α == 0`.
pub fn delta_upper(epsilon: f64, alpha: usize) -> f64 {
    assert!(epsilon > 0.0, "upper bound requires ε > 0, got {epsilon}");
    assert!(alpha > 0, "α must be positive");
    ((1.0 + epsilon).sqrt() / (epsilon / 2.0).exp()).powi(alpha as i32)
}

/// Theorem 1, lower tail: `Pr[l₂ ≤ √(1−ε)·l₁] ≤ Δₗ(ε) = (√(1−ε)·e^{ε/2})^α`
/// for `0 < ε < 1`.
///
/// # Panics
/// Panics if `ε ∉ (0, 1)` or `α == 0`.
pub fn delta_lower(epsilon: f64, alpha: usize) -> f64 {
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "lower bound requires 0 < ε < 1, got {epsilon}"
    );
    assert!(alpha > 0, "α must be positive");
    ((1.0 - epsilon).sqrt() * (epsilon / 2.0).exp()).powi(alpha as i32)
}

/// One term of Theorem 2: the probability bound `mᵅ / e^{α(m²−1)/2}` that a
/// true top-k entity at distance ratio `m = (r*_k / r*_i)(1+ε) ≥ 1` is
/// missed.
///
/// Returns 1 (vacuous bound) when `m < 1`, i.e. when the inflated k-th
/// radius does not even cover entity `i`'s radius — the theorem gives no
/// guarantee there.
pub fn miss_probability(m: f64, alpha: usize) -> f64 {
    assert!(alpha > 0, "α must be positive");
    assert!(m.is_finite() && m >= 0.0, "invalid distance ratio {m}");
    if m < 1.0 {
        return 1.0;
    }
    let a = alpha as f64;
    (m.powf(a) / (a * (m * m - 1.0) / 2.0).exp()).min(1.0)
}

/// Theorem 2: probability that `FINDTOP-KENTITIES` misses **no** true
/// top-k entity, `∏_{i=1..k} [1 − mᵢᵅ/e^{α(mᵢ²−1)/2}]`, where
/// `mᵢ = (r*_k / r*_i)(1+ε)`.
///
/// `ratios` holds the `mᵢ` values (one per result position).
pub fn topk_success_probability(ratios: &[f64], alpha: usize) -> f64 {
    ratios
        .iter()
        .map(|&m| 1.0 - miss_probability(m, alpha))
        .product::<f64>()
        .clamp(0.0, 1.0)
}

/// Theorem 2: expected number of missing entities compared to the ground
/// truth top-k, `Σ_{i=1..k} mᵢᵅ/e^{α(mᵢ²−1)/2}`.
pub fn expected_misses(ratios: &[f64], alpha: usize) -> f64 {
    ratios.iter().map(|&m| miss_probability(m, alpha)).sum()
}

/// Theorem 3: for the final query region, the probability that a point at
/// S₁-distance ≥ `r*_k (1+ε)/(1−ε′)` from the query spills into the region
/// is at most `(1−ε′)^α · e^{α(ε′−ε′²/2)}`, for `0 < ε′ < 1`.
///
/// # Panics
/// Panics if `ε′ ∉ (0, 1)` or `α == 0`.
pub fn spill_in_bound(epsilon_prime: f64, alpha: usize) -> f64 {
    assert!(
        epsilon_prime > 0.0 && epsilon_prime < 1.0,
        "Theorem 3 requires 0 < ε′ < 1, got {epsilon_prime}"
    );
    assert!(alpha > 0, "α must be positive");
    let a = alpha as f64;
    ((1.0 - epsilon_prime).powf(a)
        * (a * (epsilon_prime - epsilon_prime * epsilon_prime / 2.0)).exp())
    .min(1.0)
}

/// `Γ(k/2)` for integer `k ≥ 1`, by the half-integer recurrence
/// (`Γ(1/2) = √π`, `Γ(1) = 1`, `Γ(x+1) = x·Γ(x)`).
fn gamma_half(k: usize) -> f64 {
    assert!(k >= 1, "Γ(k/2) needs k ≥ 1");
    let mut value = if k % 2 == 0 {
        1.0 // Γ(1)
    } else {
        std::f64::consts::PI.sqrt() // Γ(1/2)
    };
    let mut j = if k % 2 == 0 { 2 } else { 1 };
    while j < k {
        value *= j as f64 / 2.0;
        j += 2;
    }
    value
}

/// The multiplicative bias `E[√α / χ_α] = √(α/2)·Γ((α−1)/2)/Γ(α/2)`
/// incurred when *inverting* a Gaussian-JL-projected distance.
///
/// A projected distance satisfies `l₂ = l₁·χ_α/√α`, so `E[l₂] ≈ l₁`, but
/// by Jensen's inequality `E[1/l₂] = (1/l₁)·E[√α/χ_α] > 1/l₁`: anything
/// proportional to an inverse projected distance (such as the §V-B
/// inverse-distance probability proxy of an unaccessed ball member) is
/// systematically inflated by this factor — ≈1.382 at α = 3, ≈1.151 at
/// α = 6, → 1 as α → ∞. Dividing by it makes the proxy unbiased.
///
/// # Panics
/// Panics if `α < 2` (the expectation diverges at α = 1).
pub fn inverse_projected_distance_bias(alpha: usize) -> f64 {
    assert!(alpha >= 2, "E[1/χ_α] diverges for α < 2, got α = {alpha}");
    (alpha as f64 / 2.0).sqrt() * gamma_half(alpha - 1) / gamma_half(alpha)
}

/// `E[1/‖Z‖]` for `Z ~ N(μ, σ²·I_α)` with `‖μ‖ = delta` and total variance
/// `spread_sq = α·σ²` — the mean inverse distance from a query to a point
/// cloud summarized by its centroid offset and spread.
///
/// Closed form (noncentral χ moment of order −1):
/// `E[1/‖Z‖] = Γ((α−1)/2)/(√2·Γ(α/2)) · ₁F₁(1/2; α/2; −λ²/2) / σ` with
/// `λ = delta/σ`. Evaluated through the Kummer transformation
/// `₁F₁(a; b; −x) = e^{−x}·₁F₁(b−a; b; x)`, whose series has all-positive
/// terms (numerically stable), with the asymptote `1/delta` for `λ² > 80`.
///
/// Compared with the naive `1/√(E‖Z‖²) = 1/√(delta² + spread_sq)`, this
/// keeps the Jensen gap that matters when the query sits *inside* the
/// cloud: at `delta = 0`, `E[1/‖Z‖]` exceeds the naive value by the same
/// `√(α/2)·Γ((α−1)/2)/Γ(α/2)` factor returned by
/// [`inverse_projected_distance_bias`].
///
/// # Panics
/// Panics if `α < 2` (the expectation diverges at α = 1) or if both
/// `delta` and `spread_sq` are zero.
pub fn mean_inverse_distance(delta: f64, spread_sq: f64, alpha: usize) -> f64 {
    assert!(alpha >= 2, "E[1/‖Z‖] diverges for α < 2, got α = {alpha}");
    assert!(
        delta > 0.0 || spread_sq > 0.0,
        "mean inverse distance of a degenerate cloud at the query point"
    );
    if spread_sq <= 0.0 {
        return 1.0 / delta;
    }
    let sigma = (spread_sq / alpha as f64).sqrt();
    let lambda_sq = (delta / sigma).powi(2);
    if lambda_sq > 80.0 {
        // ₁F₁ asymptote: the cloud is far away, distance ≈ delta.
        return 1.0 / delta;
    }
    // ₁F₁(1/2; α/2; −λ²/2) = e^{−λ²/2}·₁F₁((α−1)/2; α/2; λ²/2).
    let a = (alpha as f64 - 1.0) / 2.0;
    let b = alpha as f64 / 2.0;
    let x = lambda_sq / 2.0;
    let mut term = 1.0;
    let mut series = 1.0;
    for k in 0..500 {
        let kf = k as f64;
        term *= (a + kf) * x / ((b + kf) * (kf + 1.0));
        series += term;
        if term < series * 1e-14 {
            break;
        }
    }
    let kummer = (-x).exp() * series;
    gamma_half(alpha - 1) / (std::f64::consts::SQRT_2 * gamma_half(alpha)) * kummer / sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jl::JlTransform;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn paper_example_upper() {
        // Paper §III-B: ε = 3, α = 3 → with confidence 91.2%, l₂ < 2·l₁.
        let d = delta_upper(3.0, 3);
        assert!(
            (1.0 - d - 0.912).abs() < 0.002,
            "confidence = {}, expected ≈ 0.912",
            1.0 - d
        );
    }

    #[test]
    fn paper_example_lower() {
        // Paper §III-B: ε = 15/16, α = 3 → with confidence ≥ 94%, l₂ > l₁/4.
        let d = delta_lower(15.0 / 16.0, 3);
        assert!(1.0 - d >= 0.93, "confidence = {}", 1.0 - d);
    }

    #[test]
    fn bounds_shrink_with_alpha() {
        for alpha in 1..8 {
            assert!(delta_upper(1.0, alpha + 1) < delta_upper(1.0, alpha));
            assert!(delta_lower(0.5, alpha + 1) < delta_lower(0.5, alpha));
        }
    }

    #[test]
    fn bounds_shrink_with_epsilon() {
        let mut prev = f64::INFINITY;
        for e in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let d = delta_upper(e, 3);
            assert!(d < prev);
            prev = d;
        }
        let mut prev = f64::INFINITY;
        for e in [0.1, 0.3, 0.6, 0.9] {
            let d = delta_lower(e, 3);
            assert!(d < prev);
            prev = d;
        }
    }

    #[test]
    fn bounds_are_probabilities() {
        for e in [0.01, 0.5, 2.0, 10.0] {
            for a in [1, 3, 6] {
                let d = delta_upper(e, a);
                assert!((0.0..=1.0 + 1e-12).contains(&d), "Δᵤ({e},{a}) = {d}");
            }
        }
        for e in [0.01, 0.5, 0.99] {
            for a in [1, 3, 6] {
                let d = delta_lower(e, a);
                assert!((0.0..=1.0 + 1e-12).contains(&d), "Δₗ({e},{a}) = {d}");
            }
        }
    }

    #[test]
    fn empirical_upper_tail_never_beats_bound() {
        // Monte-Carlo check of Theorem 1's upper bound: draw many random
        // projections of a fixed pair; the frequency of l₂ ≥ √(1+ε)·l₁
        // must not exceed Δᵤ(ε) (plus sampling slack).
        let dims = 40;
        let alpha = 3;
        let mut rng = StdRng::seed_from_u64(99);
        let x: Vec<f64> = (0..dims).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f64> = (0..dims).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let l1: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let trials = 4_000;
        for eps in [1.0f64, 2.0, 3.0] {
            let threshold = (1.0 + eps).sqrt() * l1;
            let mut exceed = 0;
            for s in 0..trials {
                let t = JlTransform::new(dims, alpha, 1_000_000 + s);
                let tx = t.apply(&x);
                let ty = t.apply(&y);
                let l2: f64 = tx
                    .iter()
                    .zip(&ty)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                if l2 >= threshold {
                    exceed += 1;
                }
            }
            let freq = exceed as f64 / trials as f64;
            let bound = delta_upper(eps, alpha);
            assert!(
                freq <= bound + 0.02,
                "ε={eps}: empirical {freq} > bound {bound}"
            );
        }
    }

    #[test]
    fn empirical_lower_tail_never_beats_bound() {
        let dims = 40;
        let alpha = 3;
        let mut rng = StdRng::seed_from_u64(123);
        let x: Vec<f64> = (0..dims).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f64> = (0..dims).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let l1: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let trials = 4_000;
        for eps in [0.5f64, 0.75, 0.9375] {
            let threshold = (1.0 - eps).sqrt() * l1;
            let mut below = 0;
            for s in 0..trials {
                let t = JlTransform::new(dims, alpha, 2_000_000 + s);
                let tx = t.apply(&x);
                let ty = t.apply(&y);
                let l2: f64 = tx
                    .iter()
                    .zip(&ty)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                if l2 <= threshold {
                    below += 1;
                }
            }
            let freq = below as f64 / trials as f64;
            let bound = delta_lower(eps, alpha);
            assert!(
                freq <= bound + 0.02,
                "ε={eps}: empirical {freq} > bound {bound}"
            );
        }
    }

    #[test]
    fn miss_probability_properties() {
        // m = 1 → bound 1 (vacuous); grows tighter as m grows.
        assert_eq!(miss_probability(1.0, 3), 1.0);
        assert_eq!(miss_probability(0.5, 3), 1.0);
        let mut prev = 1.0;
        for m in [1.2, 1.5, 2.0, 3.0] {
            let p = miss_probability(m, 3);
            assert!(p < prev, "miss bound not decreasing at m={m}");
            prev = p;
        }
    }

    #[test]
    fn success_probability_composes() {
        let ratios = vec![2.0, 2.5, 3.0];
        let p = topk_success_probability(&ratios, 3);
        let manual: f64 = ratios
            .iter()
            .map(|&m| 1.0 - miss_probability(m, 3))
            .product();
        assert!((p - manual).abs() < 1e-12);
        assert!(p > 0.0 && p <= 1.0);
        let e = expected_misses(&ratios, 3);
        assert!((0.0..=3.0).contains(&e));
    }

    #[test]
    fn spill_bound_valid_range() {
        for ep in [0.1, 0.5, 0.9] {
            let b = spill_in_bound(ep, 3);
            assert!((0.0..=1.0).contains(&b), "spill bound {b}");
        }
    }

    #[test]
    #[should_panic(expected = "requires 0 < ε < 1")]
    fn lower_bound_rejects_large_eps() {
        let _ = delta_lower(1.5, 3);
    }

    #[test]
    #[should_panic(expected = "requires ε > 0")]
    fn upper_bound_rejects_nonpositive_eps() {
        let _ = delta_upper(0.0, 3);
    }
}
