//! `vkg-cli` — command-line front end for the virtual-knowledge-graph
//! engine.
//!
//! ```text
//! vkg-cli generate --dataset movie --out graph.tsv          # synthetic data
//! vkg-cli stats    --graph graph.tsv                        # Table-I numbers
//! vkg-cli embed    --graph graph.tsv --out emb.bin          # train embeddings
//! vkg-cli topk     --graph graph.tsv --embeddings emb.bin \
//!                  --entity user_7 --relation likes -k 10   # predictive top-k
//! vkg-cli count    --graph graph.tsv --embeddings emb.bin \
//!                  --entity user_7 --relation likes         # expected COUNT
//! ```
//!
//! Embeddings are stored in the compact `VKGE` binary format
//! (`vkg::embed::io`); graphs in triple TSV.

use std::fs::File;
use std::process::ExitCode;

use vkg::prelude::*;

struct Args {
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut flags = std::collections::HashMap::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) else {
                return Err(format!("unexpected argument {a:?}"));
            };
            let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            flags.insert(key.to_owned(), value.clone());
        }
        Ok(Self { flags })
    }

    fn get(&self, key: &str) -> Result<&str, String> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required --{key}"))
    }

    fn opt(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.opt(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{key} value {v:?}")),
        }
    }
}

fn usage() {
    eprintln!(
        "vkg-cli — predictive top-k and aggregate queries on knowledge graphs\n\
         \n\
         subcommands:\n\
           generate --dataset movie|amazon|freebase [--scale F] --out FILE.tsv\n\
           stats    --graph FILE.tsv\n\
           embed    --graph FILE.tsv --out FILE.bin [--method ls|transe] [--dim N] [--epochs N]\n\
           topk     --graph FILE.tsv --embeddings FILE.bin --entity NAME --relation NAME\n\
                    [--k N] [--direction tails|heads] [--alpha N] [--epsilon F]\n\
           count    --graph FILE.tsv --embeddings FILE.bin --entity NAME --relation NAME\n\
                    [--p-tau F] [--sample N]"
    );
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "stats" => cmd_stats(&args),
        "embed" => cmd_embed(&args),
        "topk" => cmd_topk(&args),
        "count" => cmd_count(&args),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load_graph(args: &Args) -> Result<KnowledgeGraph, String> {
    let path = args.get("graph")?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    vkg::kg::io::read_tsv(file).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let scale: f64 = args.num("scale", 0.1)?;
    let ds = match args.get("dataset")? {
        "movie" => movie_like(&MovieConfig::scaled(scale)),
        "amazon" => amazon_like(&AmazonConfig::scaled(scale)),
        "freebase" => freebase_like(&FreebaseConfig::scaled(scale)),
        other => return Err(format!("unknown dataset {other:?}")),
    };
    let path = args.get("out")?;
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    vkg::kg::io::write_tsv(&ds.graph, file).map_err(|e| e.to_string())?;
    println!("{}: {} → {path}", ds.name, ds.graph.stats());
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let graph = load_graph(args)?;
    println!("{}", graph.stats());
    Ok(())
}

fn cmd_embed(args: &Args) -> Result<(), String> {
    let graph = load_graph(args)?;
    let dim: usize = args.num("dim", 48)?;
    let store = match args.opt("method").unwrap_or("ls") {
        "ls" => vkg::embed::least_squares_embedding(
            &graph,
            &vkg::embed::LsConfig {
                dim,
                ..Default::default()
            },
        ),
        "transe" => {
            let epochs: usize = args.num("epochs", 30)?;
            let (store, stats) = TransE::new(TransEConfig {
                dim,
                epochs,
                ..TransEConfig::default()
            })
            .train(&graph);
            println!(
                "TransE: {} epochs, final loss {:.4}",
                epochs,
                stats.final_loss().unwrap_or(0.0)
            );
            store
        }
        other => return Err(format!("unknown embedding method {other:?}")),
    };
    let path = args.get("out")?;
    let bytes = vkg::embed::io::to_binary(&store);
    std::fs::write(path, &bytes).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!(
        "embedded {} entities, {} relations (d={dim}) → {path} ({} KiB)",
        store.num_entities(),
        store.num_relations(),
        bytes.len() / 1024
    );
    Ok(())
}

fn build_engine(args: &Args) -> Result<VirtualKnowledgeGraph, String> {
    let graph = load_graph(args)?;
    let path = args.get("embeddings")?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let store = vkg::embed::io::from_binary(&bytes).map_err(|e| e.to_string())?;
    if store.num_entities() != graph.num_entities() {
        return Err(format!(
            "embeddings cover {} entities but the graph has {} — re-run `vkg-cli embed`",
            store.num_entities(),
            graph.num_entities()
        ));
    }
    let cfg = VkgConfig {
        alpha: args.num("alpha", 3)?,
        epsilon: args.num("epsilon", 1.0)?,
        ..VkgConfig::default()
    };
    Ok(VirtualKnowledgeGraph::assemble(
        graph,
        AttributeStore::new(),
        store,
        cfg,
    ))
}

fn resolve(
    vkg: &VirtualKnowledgeGraph,
    args: &Args,
) -> Result<(EntityId, RelationId, Direction), String> {
    let ename = args.get("entity")?;
    let rname = args.get("relation")?;
    let entity = vkg
        .graph()
        .entity_id(ename)
        .ok_or_else(|| format!("unknown entity {ename:?}"))?;
    let relation = vkg
        .graph()
        .relation_id(rname)
        .ok_or_else(|| format!("unknown relation {rname:?}"))?;
    let direction = match args.opt("direction").unwrap_or("tails") {
        "tails" => Direction::Tails,
        "heads" => Direction::Heads,
        other => return Err(format!("bad --direction {other:?}")),
    };
    Ok((entity, relation, direction))
}

fn cmd_topk(args: &Args) -> Result<(), String> {
    let vkg = build_engine(args)?;
    let (entity, relation, direction) = resolve(&vkg, args)?;
    let k: usize = args.num("k", 10)?;
    let t = vkg::obs::Stopwatch::start();
    let r = vkg
        .top_k(entity, relation, direction, k)
        .map_err(|e| e.to_string())?;
    let elapsed = t.elapsed();
    for (rank, p) in r.predictions.iter().enumerate() {
        println!(
            "{:>3}. {:24} distance {:8.4}  probability {:.4}",
            rank + 1,
            vkg.graph().entity_name(EntityId(p.id)).unwrap_or("?"),
            p.distance,
            p.probability
        );
    }
    println!(
        "\n{} results in {elapsed:.1?}; Theorem 2: success prob ≥ {:.3}, expected misses ≤ {:.3}",
        r.predictions.len(),
        r.guarantee.success_probability,
        r.guarantee.expected_misses
    );
    Ok(())
}

fn cmd_count(args: &Args) -> Result<(), String> {
    let vkg = build_engine(args)?;
    let (entity, relation, direction) = resolve(&vkg, args)?;
    let mut spec = AggregateSpec::count(args.num("p-tau", 0.05)?);
    if let Some(s) = args.opt("sample") {
        spec = spec.with_sample(s.parse().map_err(|_| "bad --sample".to_string())?);
    }
    let r = vkg
        .aggregate(entity, relation, direction, &spec)
        .map_err(|e| e.to_string())?;
    println!(
        "expected count: {:.2}   (ball {} entities, {} accessed; 90%-conf rel. error ±{:.1}%)",
        r.estimate,
        r.ball_size,
        r.accessed,
        100.0 * r.bound.delta_for_confidence(0.9)
    );
    Ok(())
}
