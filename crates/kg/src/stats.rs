//! Dataset summary statistics (Table I of the paper).

/// Entity / relationship-type / edge counts of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of entities (vertices).
    pub entities: usize,
    /// Number of distinct relationship types.
    pub relation_types: usize,
    /// Number of materialized edges in `E`.
    pub edges: usize,
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} entities, {} relationship types, {} edges",
            self.entities, self.relation_types, self.edges
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_all_counts() {
        let s = GraphStats {
            entities: 10,
            relation_types: 2,
            edges: 30,
        };
        let text = s.to_string();
        assert!(text.contains("10 entities"));
        assert!(text.contains("2 relationship types"));
        assert!(text.contains("30 edges"));
    }

    #[test]
    fn stats_are_copy_and_comparable() {
        let s = GraphStats {
            entities: 1,
            relation_types: 2,
            edges: 3,
        };
        let t = s;
        assert_eq!(s, t);
    }
}
